/**
 * @file
 * emmcsim_cli: command-line front end to the library.
 *
 * Subcommands:
 *   list                               show the 25 built-in profiles
 *   generate <app> <out> [scale] [seed]  write a trace file
 *   analyze <trace-file>               Table III/IV-style report
 *   replay <trace-file> [scheme] [--audit [N]]
 *                                      replay on 4PS/8PS/HPS/HSLC,
 *                                      print the measured metrics;
 *                                      --audit runs full invariant
 *                                      audits every N events (default
 *                                      10000) and reports the outcome
 *   compare <app> [scale]              run the Fig 8/9 comparison
 *   sweep [app ...] [--schemes=L] [--ablate=L] [--jobs=N] ...
 *                                      fan out app x scheme x ablation
 *                                      replays over a worker pool
 *   snapshot <trace> <image> [scheme] --at=NS
 *                                      replay until the first quiescent
 *                                      point at/after NS and write a
 *                                      resumable device image
 *   restore <trace> <image> [scheme]   resume a snapshot to completion
 *                                      (same options as the capture)
 *   explain <report.json>              attribute run latency to phases
 *                                      (needs a report written with
 *                                      --attribution)
 *   diff <a.json> <b.json>             attribute the response-time
 *                                      change between two reports to
 *                                      the phases that moved
 *   ingest <format> <in> <out>         import a foreign block trace
 *                                      (blktrace, biosnoop, alibaba,
 *                                      tencent, emmctrace) and write it
 *                                      normalized as emmctrace-bin v1
 *   trace-info <file>                  header + streamed statistics of
 *                                      a text or binary trace
 *
 * replay also accepts --spo-at=NS[,NS...] / --spo-random=N,seed to cut
 * device power mid-run and drive the FTL recovery path. A replay of an
 * emmctrace-bin file streams it chunk by chunk (bounded memory for
 * multi-GB traces); SPO / snapshot / restore need a text trace.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/distributions.hh"
#include "check/audit.hh"
#include "sim/logging.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"
#include "core/cli_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "fault/spo.hh"
#include "host/replayer.hh"
#include "obs/explain.hh"
#include "obs/json_read.hh"
#include "obs/report.hh"
#include "trace/binfmt.hh"
#include "trace/ingest/ingest.hh"
#include "trace/source.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
cmdList()
{
    core::TablePrinter table(
        {"Name", "Requests", "Duration (s)", "Write %", "Description"});
    for (const workload::AppProfile &p : workload::allProfiles()) {
        table.addRow({p.name, core::fmt(p.requestCount),
                      core::fmt(sim::toSeconds(p.duration), 0),
                      core::fmt(100.0 * p.writeFraction, 1),
                      p.description});
    }
    table.print(std::cout);
    return 0;
}

int
cmdGenerate(const std::string &app, const std::string &out,
            double scale, std::uint64_t seed)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, seed);
    trace::Trace t = gen.generate(scale);
    t.saveFile(out);
    std::cout << "wrote " << t.size() << " requests ("
              << t.totalBytes() / 1024 << " KB) to " << out << "\n";
    return 0;
}

void
printStats(const trace::Trace &t)
{
    analysis::SizeStats ss = analysis::computeSizeStats(t);
    analysis::TimingStats ts = analysis::computeTimingStats(t);
    core::TablePrinter table({"Metric", "Value"});
    table.addRow({"Requests", core::fmt(ss.requests)});
    table.addRow({"Data size (KB)", core::fmt(ss.dataSizeKb, 0)});
    table.addRow({"Ave size (KB)", core::fmt(ss.aveSizeKb, 1)});
    table.addRow({"Write requests (%)", core::fmt(ss.writeReqPct, 2)});
    table.addRow({"Duration (s)", core::fmt(ts.durationSec, 1)});
    table.addRow({"Arrival rate (req/s)", core::fmt(ts.arrivalRate, 2)});
    table.addRow({"Spatial locality (%)", core::fmt(ts.spatialPct, 2)});
    table.addRow(
        {"Temporal locality (%)", core::fmt(ts.temporalPct, 2)});
    if (ts.replayed) {
        table.addRow({"NoWait ratio (%)", core::fmt(ts.noWaitPct, 1)});
        table.addRow(
            {"Mean service (ms)", core::fmt(ts.meanServiceMs, 2)});
        table.addRow(
            {"Mean response (ms)", core::fmt(ts.meanResponseMs, 2)});
    }
    table.print(std::cout);
}

/**
 * Load a trace through the structured-error API: malformed input or an
 * unopenable file prints the offending line and reason instead of
 * aborting the process.
 * @retval true on success.
 */
bool
loadTraceOrReport(const std::string &path, trace::Trace &t)
{
    trace::TraceLoadError err;
    if (!trace::Trace::tryLoadFile(path, t, err)) {
        std::cerr << "error: cannot load trace " << path << ": "
                  << err.message() << "\n";
        return false;
    }
    return true;
}

int
cmdAnalyze(const std::string &path)
{
    trace::Trace t;
    if (!loadTraceOrReport(path, t))
        return 1;
    std::string problem = t.validate();
    if (!problem.empty()) {
        std::cerr << "invalid trace: " << problem << "\n";
        return 1;
    }
    std::cout << "Trace \"" << t.name() << "\" (" << path << ")\n\n";
    printStats(t);
    return 0;
}

/** Read and parse @p path as a run-report JSON document. */
bool
loadJsonReport(const std::string &path, obs::JsonValue &out)
{
    std::ifstream is(path);
    std::ostringstream buf;
    if (is)
        buf << is.rdbuf();
    if (!is) {
        std::cerr << "error: cannot read " << path << "\n";
        return false;
    }
    std::string err;
    if (!obs::JsonValue::parse(buf.str(), out, err)) {
        std::cerr << "error: " << path << ": " << err << "\n";
        return false;
    }
    return true;
}

int
cmdExplain(const std::string &path)
{
    obs::JsonValue report;
    if (!loadJsonReport(path, report))
        return 1;
    std::string err;
    if (!obs::explainReport(report, std::cout, err)) {
        std::cerr << "error: " << path << ": " << err << "\n";
        return 1;
    }
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    obs::JsonValue before;
    obs::JsonValue after;
    if (!loadJsonReport(path_a, before) || !loadJsonReport(path_b, after))
        return 1;
    std::cout << "diff " << path_a << " -> " << path_b << "\n";
    std::string err;
    if (!obs::diffReports(before, after, std::cout, err)) {
        std::cerr << "error: " << err << "\n";
        return 1;
    }
    return 0;
}

bool
parseScheme(const std::string &name, core::SchemeKind &kind)
{
    for (core::SchemeKind k : core::extendedSchemes()) {
        if (core::schemeName(k) == name) {
            kind = k;
            return true;
        }
    }
    return false;
}

/** Observability output files requested on the command line. */
struct ObsOutputs
{
    std::string metricsJson; ///< run-report JSON (--metrics-json)
    std::string chromeTrace; ///< Chrome trace_event JSON (--trace-out)
    std::string biotracerCsv; ///< emmctrace text (--trace-csv)
};

/** Write @p content to @p path; prints an error on failure. */
bool
writeFileOrReport(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (os)
        os << content;
    if (!os) {
        std::cerr << "error: cannot write " << path << "\n";
        return false;
    }
    return true;
}

/** How cmdReplay drives the run: plain, capture, or resume. */
enum class RunMode { Replay, Snapshot, Restore };

/** Randomized SPO schedule requested via --spo-random=N,seed. */
struct SpoRandomArgs
{
    std::uint64_t count = 0; ///< 0 = not requested
    std::uint64_t seed = 1;
};

int
cmdReplay(const std::string &path, const std::string &scheme,
          core::ExperimentOptions opts, const ObsOutputs &outs,
          const SpoRandomArgs &spo_random = {},
          RunMode mode = RunMode::Replay,
          const std::string &image_path = {})
{
    core::SchemeKind kind = core::SchemeKind::HPS;
    if (!parseScheme(scheme, kind)) {
        std::cerr << "error: unknown scheme (use 4PS, 8PS, HPS, or "
                     "HSLC): "
                  << scheme << "\n";
        return 2;
    }

    // emmctrace-bin replays stream (bounded memory); everything that
    // needs the whole trace in hand is text-path only.
    const bool binary = trace::BinTraceSource::isBinTraceFile(path);
    core::CaseResult res;
    if (binary) {
        if (mode != RunMode::Replay) {
            std::cerr << "error: " << (mode == RunMode::Snapshot
                                           ? "snapshot"
                                           : "restore")
                      << " needs a text trace (emmctrace-bin streams "
                         "and cannot capture/resume)\n";
            return 2;
        }
        if (!opts.spo.ticks.empty() || spo_random.count > 0) {
            std::cerr << "error: --spo-* needs a text trace "
                         "(emmctrace-bin streams and cannot inject "
                         "power cuts)\n";
            return 2;
        }
        trace::BinTraceSource src(path);
        if (src.failed()) {
            std::cerr << "error: cannot load trace " << path << ": "
                      << src.error().message() << "\n";
            return 1;
        }
        res = core::runCaseStream(src, kind, opts);
        if (src.failed()) {
            std::cerr << "error: trace " << path
                      << " failed mid-stream: " << src.error().message()
                      << "\n";
            return 1;
        }
        std::cout << "Replayed \"" << res.traceName << "\" on "
                  << res.scheme
                  << (src.mapped() ? " (memory-mapped)" : " (streamed)")
                  << "\n\n";
        core::TablePrinter table({"Metric", "Value"});
        table.addRow({"Requests", core::fmt(res.requests)});
        table.addRow(
            {"Mean response (ms)", core::fmt(res.meanResponseMs, 2)});
        table.addRow(
            {"Mean service (ms)", core::fmt(res.meanServiceMs, 2)});
        table.addRow({"NoWait ratio (%)", core::fmt(res.noWaitPct, 1)});
        table.addRow(
            {"p99 response est (ms)", core::fmt(res.p99ResponseMs, 2)});
        table.print(std::cout);
    } else {
        trace::Trace t;
        if (!loadTraceOrReport(path, t))
            return 1;
        if (spo_random.count > 0) {
            sim::Time horizon = 0;
            for (const auto &r : t.records())
                horizon = std::max(horizon, r.arrival);
            if (horizon <= 0) {
                std::cerr << "error: --spo-random needs a trace with "
                             "nonzero arrival times\n";
                return 2;
            }
            std::vector<sim::Time> drawn = fault::drawSpoTicks(
                static_cast<std::uint32_t>(spo_random.count),
                spo_random.seed, horizon);
            opts.spo.ticks.insert(opts.spo.ticks.end(), drawn.begin(),
                                  drawn.end());
            std::sort(opts.spo.ticks.begin(), opts.spo.ticks.end());
        }

        if (mode == RunMode::Restore) {
            std::ifstream is(image_path, std::ios::binary);
            std::ostringstream buf;
            if (is)
                buf << is.rdbuf();
            if (!is) {
                std::cerr << "error: cannot read snapshot " << image_path
                          << "\n";
                return 1;
            }
            res = core::resumeCase(t, kind, buf.str(), opts);
        } else {
            res = core::runCase(t, kind, opts);
        }
        if (mode == RunMode::Snapshot) {
            std::ofstream os(image_path, std::ios::binary);
            if (os)
                os.write(res.snapshotImage.data(),
                         static_cast<std::streamsize>(
                             res.snapshotImage.size()));
            if (!os) {
                std::cerr << "error: cannot write snapshot " << image_path
                          << "\n";
                return 1;
            }
            std::cout << "wrote snapshot (" << res.snapshotImage.size()
                      << " bytes) to " << image_path << "\n";
        }
        std::cout << "Replayed \"" << t.name() << "\" on " << res.scheme
                  << "\n\n";
        printStats(res.replayed);
    }
    std::cout << "\nSpace utilization: "
              << core::fmt(res.spaceUtilization, 3) << "\n";
    if (opts.fault.enabled) {
        core::TablePrinter table({"Reliability metric", "Value"});
        table.addRow({"p99 response (ms)",
                      core::fmt(res.p99ResponseMs, 2)});
        table.addRow({"Corrected reads", core::fmt(res.correctedReads)});
        table.addRow(
            {"Uncorrectable reads", core::fmt(res.uncorrectableReads)});
        table.addRow(
            {"Read-retry rounds", core::fmt(res.readRetryRounds)});
        table.addRow(
            {"Program failures", core::fmt(res.programFailures)});
        table.addRow({"Erase failures", core::fmt(res.eraseFailures)});
        table.addRow(
            {"Relocated programs", core::fmt(res.relocatedPrograms)});
        table.addRow({"Retired blocks", core::fmt(res.retiredBlocks)});
        table.addRow({"Host retries", core::fmt(res.hostRetries)});
        table.addRow(
            {"Host failed requests", core::fmt(res.hostFailedRequests)});
        table.addRow({"Host retry penalty (ms)",
                      core::fmt(res.hostRetryPenaltyMs, 2)});
        table.addRow(
            {"Device read-only", res.deviceReadOnly ? "yes" : "no"});
        std::cout << "\n";
        table.print(std::cout);
    }
    if (!opts.spo.ticks.empty()) {
        core::TablePrinter table({"SPO metric", "Value"});
        table.addRow({"Power cuts", core::fmt(res.spoEvents)});
        table.addRow({"Torn pages", core::fmt(res.spoTornPages)});
        table.addRow(
            {"Lost dirty buffer units", core::fmt(res.spoLostDirtyUnits)});
        table.addRow(
            {"Re-issued requests", core::fmt(res.reissuedRequests)});
        table.addRow(
            {"Recovery time (ms)", core::fmt(res.recoveryTimeMs, 3)});
        table.addRow(
            {"Journal pages flushed", core::fmt(res.journalPagesFlushed)});
        table.addRow(
            {"Journal checkpoints", core::fmt(res.journalCheckpoints)});
        std::cout << "\n";
        table.print(std::cout);
    }
    if (opts.auditEveryEvents > 0) {
        std::cout << "\n";
        core::printAuditReport(std::cout, res.audit);
        if (!res.audit.clean())
            return 3;
    }

    if (!outs.metricsJson.empty()) {
        obs::RunReport report;
        report.setMeta("tool", "emmcsim_cli");
        report.setMeta("command", "replay");
        report.setMeta("trace", res.traceName);
        report.setMeta("trace_file", path);
        report.setMeta("scheme", res.scheme);
        report.setMeta("requests", res.requests);
        report.addRun("replay", res.obs.metrics, res.obs.series,
                      res.obs.attribution);
        report.writeJsonFile(outs.metricsJson);
        std::cout << "\nwrote metrics report to " << outs.metricsJson
                  << "\n";
    }
    if (!outs.chromeTrace.empty()) {
        if (!writeFileOrReport(outs.chromeTrace, res.obs.chromeTrace))
            return 1;
        std::cout << "wrote Chrome trace to " << outs.chromeTrace
                  << "\n";
    }
    if (!outs.biotracerCsv.empty()) {
        if (!writeFileOrReport(outs.biotracerCsv, res.obs.biotracerTrace))
            return 1;
        std::cout << "wrote replayed trace to " << outs.biotracerCsv
                  << "\n";
    }
    return 0;
}

int
cmdIngest(const std::string &format_name, const std::string &in_path,
          const std::string &out_path,
          const trace::ingest::IngestOptions &iopts,
          const std::string &metrics_json)
{
    trace::ingest::Format format;
    if (!trace::ingest::formatFromName(format_name, format)) {
        std::cerr << "error: unknown format (use "
                  << trace::ingest::formatNames() << "): " << format_name
                  << "\n";
        return 2;
    }
    trace::Trace t;
    trace::ingest::IngestStats st;
    std::string err;
    if (!trace::ingest::ingestFile(format, in_path, iopts, t, st, err)) {
        std::cerr << "error: cannot ingest " << in_path << ": " << err
                  << "\n";
        return 1;
    }
    trace::saveBinTraceFile(t, out_path);

    std::cout << "Ingested \"" << t.name() << "\" (" << format_name
              << ") -> " << out_path << "\n\n";
    core::TablePrinter table({"Ingest metric", "Value"});
    table.addRow({"Lines read", core::fmt(st.linesTotal)});
    table.addRow({"Lines skipped", core::fmt(st.linesSkipped)});
    table.addRow({"Records parsed", core::fmt(st.parsed)});
    table.addRow({"Records kept", core::fmt(st.kept)});
    table.addRow({"Dropped (volume filter)", core::fmt(st.droppedVolume)});
    table.addRow({"Dropped (zero size)", core::fmt(st.droppedZeroSize)});
    table.addRow({"Dropped (oversize)", core::fmt(st.droppedOversize)});
    table.addRow({"4KB re-aligned", core::fmt(st.aligned)});
    table.addRow({"Address-remapped", core::fmt(st.remapped)});
    table.addRow({"Reads / writes",
                  core::fmt(st.reads) + " / " + core::fmt(st.writes)});
    table.addRow({"Read data (KB)", core::fmt(st.readBytes / 1024)});
    table.addRow({"Write data (KB)", core::fmt(st.writeBytes / 1024)});
    table.addRow({"Span (s)", core::fmt(sim::toSeconds(st.spanNs), 3)});
    table.addRow({"Volumes seen", core::fmt(st.volumesSeen)});
    table.print(std::cout);

    if (!metrics_json.empty()) {
        obs::MetricsSnapshot snap;
        auto counter = [&snap](const char *name, std::uint64_t v) {
            snap.counters.push_back({name, v});
        };
        counter("ingest.lines_total", st.linesTotal);
        counter("ingest.lines_skipped", st.linesSkipped);
        counter("ingest.records_parsed", st.parsed);
        counter("ingest.records_kept", st.kept);
        counter("ingest.dropped_volume", st.droppedVolume);
        counter("ingest.dropped_zero_size", st.droppedZeroSize);
        counter("ingest.dropped_oversize", st.droppedOversize);
        counter("ingest.aligned", st.aligned);
        counter("ingest.remapped", st.remapped);
        counter("ingest.reads", st.reads);
        counter("ingest.writes", st.writes);
        counter("ingest.read_bytes", st.readBytes);
        counter("ingest.write_bytes", st.writeBytes);
        counter("ingest.span_ns", static_cast<std::uint64_t>(st.spanNs));
        counter("ingest.volumes_seen", st.volumesSeen);

        obs::RunReport report;
        report.setMeta("tool", "emmcsim_cli");
        report.setMeta("command", "ingest");
        report.setMeta("format", format_name);
        report.setMeta("input", in_path);
        report.setMeta("output", out_path);
        report.setMeta("trace", t.name());
        report.addRun("ingest", std::move(snap));
        report.writeJsonFile(metrics_json);
        std::cout << "\nwrote ingest report to " << metrics_json << "\n";
    }
    return 0;
}

int
cmdTraceInfo(const std::string &path, const std::string &metrics_json)
{
    // Both encodings stream through the same cursor interface, so a
    // multi-GB trace is summarized in bounded memory.
    const bool binary = trace::BinTraceSource::isBinTraceFile(path);
    trace::BinTraceSource bin_src(binary ? path : std::string());
    trace::TextTraceSource text_src(binary ? std::string() : path);
    trace::TraceSource &src =
        binary ? static_cast<trace::TraceSource &>(bin_src) : text_src;
    if (src.failed()) {
        std::cerr << "error: cannot load trace " << path << ": "
                  << src.error().message() << "\n";
        return 1;
    }

    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    sim::Time span = 0;
    bool replayed = true;
    std::vector<trace::TraceRecord> chunk(4096);
    while (true) {
        const std::size_t n = src.next(chunk.data(), chunk.size());
        if (n == 0)
            break;
        records += n;
        for (std::size_t i = 0; i < n; ++i) {
            const trace::TraceRecord &r = chunk[i];
            if (r.isWrite()) {
                ++writes;
                write_bytes += r.sizeBytes.value();
            } else {
                ++reads;
                read_bytes += r.sizeBytes.value();
            }
            span = std::max(span, r.arrival);
            replayed = replayed && r.replayed();
        }
    }
    if (src.failed()) {
        std::cerr << "error: trace " << path << " is corrupt: "
                  << src.error().message() << "\n";
        return 1;
    }

    std::cout << "Trace \"" << src.name() << "\" (" << path << ")\n\n";
    core::TablePrinter table({"Field", "Value"});
    table.addRow({"Format", binary ? "emmctrace-bin v1"
                                   : "emmctrace v1 (text)"});
    if (binary) {
        const trace::BinTraceInfo &info = bin_src.info();
        table.addRow({"Header records", core::fmt(info.records)});
        table.addRow({"Block records", core::fmt(std::uint64_t{
                         info.blockRecords})});
        table.addRow({"Checksum", "verified"});
        table.addRow({"Backing", bin_src.mapped() ? "memory-mapped"
                                                  : "streamed"});
        table.addRow({"Replay timestamps",
                      info.hasReplayTimes ? "yes" : "no"});
    } else {
        table.addRow({"Replay timestamps",
                      records > 0 && replayed ? "yes" : "no"});
    }
    table.addRow({"Records", core::fmt(records)});
    table.addRow({"Reads / writes",
                  core::fmt(reads) + " / " + core::fmt(writes)});
    table.addRow({"Read data (KB)", core::fmt(read_bytes / 1024)});
    table.addRow({"Write data (KB)", core::fmt(write_bytes / 1024)});
    table.addRow({"Span (s)", core::fmt(sim::toSeconds(span), 3)});
    table.print(std::cout);

    if (!metrics_json.empty()) {
        obs::MetricsSnapshot snap;
        snap.counters.push_back({"trace.records", records});
        snap.counters.push_back({"trace.reads", reads});
        snap.counters.push_back({"trace.writes", writes});
        snap.counters.push_back({"trace.read_bytes", read_bytes});
        snap.counters.push_back({"trace.write_bytes", write_bytes});
        snap.counters.push_back(
            {"trace.span_ns", static_cast<std::uint64_t>(span)});

        obs::RunReport report;
        report.setMeta("tool", "emmcsim_cli");
        report.setMeta("command", "trace-info");
        report.setMeta("trace", src.name());
        report.setMeta("trace_file", path);
        report.setMeta("format",
                       binary ? "emmctrace-bin v1" : "emmctrace v1");
        report.addRun("trace-info", std::move(snap));
        report.writeJsonFile(metrics_json);
        std::cout << "\nwrote trace report to " << metrics_json << "\n";
    }
    return 0;
}

int
cmdCompare(const std::string &app, double scale)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(scale);
    core::TablePrinter table(
        {"Scheme", "MRT (ms)", "Mean serv (ms)", "Space util"});
    for (core::SchemeKind kind : core::extendedSchemes()) {
        core::CaseResult res = core::runCase(t, kind);
        table.addRow({res.scheme, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3)});
    }
    table.print(std::cout);
    return 0;
}

/** One ablation variant applied on top of the Table V scheme. */
struct SweepVariant
{
    std::string name;
    core::ExperimentOptions opts;
};

/** Map an --ablate toggle name to its experiment options. */
bool
parseVariant(const std::string &name, SweepVariant &out)
{
    core::ExperimentOptions opts;
    if (name == "baseline") {
        // Table V device as-is.
    } else if (name == "nopack") {
        opts.packing = false;
    } else if (name == "idlegc") {
        opts.idleGc = true;
    } else if (name == "multiplane") {
        opts.multiplane = true;
    } else if (name == "costbenefit") {
        opts.gcVictimPolicy = ftl::GcVictimPolicy::CostBenefit;
    } else if (name == "static-alloc") {
        opts.allocPolicy = ftl::AllocPolicy::StaticLpn;
    } else {
        return false;
    }
    out.name = name;
    out.opts = opts;
    return true;
}

/** Split a comma-separated flag value ("a,b,c"); skips empties. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Parsed `sweep` invocation. */
struct SweepArgs
{
    std::vector<std::string> apps; ///< empty = all individual profiles
    std::vector<core::SchemeKind> schemes;
    std::vector<SweepVariant> variants;
    double scale = 0.25;
    std::uint64_t seed = 1;
    unsigned jobs = 0; ///< 0 = one worker per hardware thread
    std::string metricsJson;
    bool attribution = false; ///< per-run attribution in the report
};

/**
 * Fan the (app x scheme x variant) product out over a core::Sweep
 * worker pool and print one table row per case, in the deterministic
 * product order. Traces are generated once per app up front and
 * shared read-only by the workers, so every run replays identical
 * input regardless of --jobs.
 */
int
cmdSweep(const SweepArgs &sa)
{
    std::vector<const workload::AppProfile *> profiles;
    if (sa.apps.empty()) {
        for (const workload::AppProfile &p :
             workload::individualProfiles())
            profiles.push_back(&p);
    } else {
        for (const std::string &app : sa.apps) {
            const workload::AppProfile *p = workload::findProfile(app);
            if (p == nullptr) {
                std::cerr << "unknown application: " << app << "\n";
                return 1;
            }
            profiles.push_back(p);
        }
    }

    std::vector<trace::Trace> traces;
    traces.reserve(profiles.size());
    for (const workload::AppProfile *p : profiles) {
        workload::TraceGenerator gen(*p, sa.seed);
        traces.push_back(gen.generate(sa.scale));
    }

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (core::SchemeKind kind : sa.schemes) {
            for (const SweepVariant &variant : sa.variants) {
                core::SweepCase c;
                c.label = profiles[ti]->name + "/" +
                          core::schemeName(kind) + "/" + variant.name;
                c.trace = &traces[ti];
                c.kind = kind;
                c.opts = variant.opts;
                c.opts.obs.metrics = !sa.metricsJson.empty();
                c.opts.obs.attribution = sa.attribution;
                cases.push_back(std::move(c));
            }
        }
    }

    std::cout << "Sweep: " << cases.size() << " cases ("
              << profiles.size() << " apps x " << sa.schemes.size()
              << " schemes x " << sa.variants.size()
              << " variants) on " << core::effectiveJobs(sa.jobs)
              << " workers, scale " << sa.scale << ", seed " << sa.seed
              << "\n\n";

    const std::vector<core::CaseResult> results =
        core::runCases(cases, sa.jobs);

    core::TablePrinter table({"Case", "MRT (ms)", "Mean serv (ms)",
                              "Space util", "WA", "GC rounds",
                              "p99 resp (ms)"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        table.addRow({cases[i].label, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3),
                      core::fmt(res.writeAmplification, 3),
                      core::fmt(res.gcBlockingRounds),
                      core::fmt(res.p99ResponseMs)});
    }
    table.print(std::cout);

    if (!sa.metricsJson.empty()) {
        obs::RunReport report;
        report.setMeta("tool", "emmcsim_cli");
        report.setMeta("command", "sweep");
        report.setMeta("scale", sa.scale);
        report.setMeta("seed", sa.seed);
        report.setMeta("cases",
                       static_cast<std::uint64_t>(cases.size()));
        for (std::size_t i = 0; i < results.size(); ++i)
            report.addRun(cases[i].label, results[i].obs.metrics, {},
                          results[i].obs.attribution);
        report.writeJsonFile(sa.metricsJson);
        std::cout << "\nwrote metrics report (" << report.runCount()
                  << " runs) to " << sa.metricsJson << "\n";
    }
    return 0;
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  emmcsim_cli list\n"
           "  emmcsim_cli generate <app> <out> [scale] [seed]\n"
           "  emmcsim_cli analyze <trace-file>\n"
           "  emmcsim_cli replay <trace-file> [4PS|8PS|HPS|HSLC]\n"
           "      [--audit[=N]]           full invariant audits every N "
           "events (default 10000)\n"
           "      [--fault-rber=X]        enable NAND fault injection "
           "at base RBER X\n"
           "      [--fault-seed=N]        fault-injection RNG seed "
           "(default 1)\n"
           "      [--fault-program-fail=X] program-status failure "
           "probability\n"
           "      [--fault-erase-fail=X]  erase failure probability\n"
           "      [--retries=N]           host retry budget per failed "
           "request (default 3)\n"
           "      [--metrics-json=FILE]   write the run-report JSON "
           "(all registry metrics)\n"
           "      [--trace-out=FILE]      record request/flash spans, "
           "write Chrome trace JSON\n"
           "      [--trace-csv=FILE]      write the replayed trace in "
           "emmctrace text format\n"
           "      [--sample-window-ms=N]  record windowed metric "
           "series every N ms\n"
           "      [--attribution]         per-request phase ledgers -> "
           "report \"attribution\" section\n"
           "      [--spo-at=NS[,NS...]]   cut device power at the "
           "given simulated ns\n"
           "      [--spo-random=N,SEED]   cut power at N seeded random "
           "points in the run\n"
           "      [--spo-notify]          send POWER_OFF_NOTIFICATION "
           "before each cut\n"
           "      [--spo-delay-ms=N]      power-off duration per cut "
           "(default 100 ms)\n"
           "  emmcsim_cli snapshot <trace-file> <image-out> "
           "[4PS|8PS|HPS|HSLC] --at=NS\n"
           "      capture a resumable image at the first quiescent "
           "point at/after NS;\n"
           "      accepts the replay flags except --spo-*\n"
           "  emmcsim_cli restore <trace-file> <image-file> "
           "[4PS|8PS|HPS|HSLC]\n"
           "      resume a snapshot to completion; pass the same "
           "flags as the capture\n"
           "  emmcsim_cli compare <app> [scale]\n"
           "  emmcsim_cli sweep [app ...]\n"
           "      [--schemes=4PS,8PS,HPS,HSLC] schemes to replay "
           "(default 4PS,8PS,HPS)\n"
           "      [--ablate=LIST]         ablation variants per case: "
           "baseline, nopack,\n"
           "                              idlegc, multiplane, "
           "costbenefit, static-alloc\n"
           "      [--scale=X]             trace scale factor (default "
           "0.25)\n"
           "      [--seed=N]              trace-generator seed "
           "(default 1)\n"
           "      [--jobs=N]              worker threads (default: one "
           "per hardware thread);\n"
           "                              results are byte-identical "
           "for every N\n"
           "      [--metrics-json=FILE]   run-report JSON, one run per "
           "case\n"
           "      [--attribution]         per-run attribution sections "
           "in the report\n"
           "  emmcsim_cli explain <report.json>\n"
           "      print where the time went: phase breakdown, tail "
           "composition,\n"
           "      slowest requests and mount cost (needs "
           "--attribution data)\n"
           "  emmcsim_cli diff <before.json> <after.json>\n"
           "      attribute the response-time change between two "
           "reports to phases\n"
           "  emmcsim_cli ingest <format> <in-file> <out-file>\n"
           "      import a foreign block trace as normalized "
           "emmctrace-bin v1;\n"
           "      formats: emmctrace, blktrace, biosnoop, alibaba, "
           "tencent\n"
           "      [--volume=ID]           keep only this device/volume "
           "id\n"
           "      [--target-units=N]      fold addresses into an "
           "N-unit (4KB) device\n"
           "      [--name=NAME]           workload name for the "
           "output trace\n"
           "      [--metrics-json=FILE]   write ingest statistics as "
           "a run report\n"
           "  emmcsim_cli trace-info <trace-file> "
           "[--metrics-json=FILE]\n"
           "      header + streamed statistics of a text or "
           "emmctrace-bin trace\n"
           "\n"
           "  EMMCSIM_LOG=[level][,comp=level...] controls logging "
           "(debug|info|warn), e.g. EMMCSIM_LOG=warn,gc=debug\n";
    return 2;
}

int
usageError(const std::string &what)
{
    std::cerr << "error: " << what << "\n\n";
    return usage();
}

// Number parsing is shared with the other binaries (core/cli_util.hh)
// so every CLI rejects the same malformed inputs.
using core::parseF64;
using core::parseJobs;
using core::parseU64;

/**
 * Split @p args into positional arguments and "--name[=value]" flags.
 * Flags listed in @p value_flags may also take their value as the next
 * token ("--flag value"). Unknown flags are a usage error.
 * @retval true on success.
 */
bool
splitArgs(const std::vector<std::string> &args,
          const std::vector<std::string> &known_flags,
          const std::vector<std::string> &value_flags,
          std::vector<std::string> &positionals,
          std::vector<std::pair<std::string, std::string>> &flags,
          std::string &problem)
{
    auto contains = [](const std::vector<std::string> &v,
                       const std::string &s) {
        return std::find(v.begin(), v.end(), s) != v.end();
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a.rfind("--", 0) != 0) {
            positionals.push_back(a);
            continue;
        }
        std::string name = a;
        std::string value;
        bool has_value = false;
        const std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(0, eq);
            value = a.substr(eq + 1);
            has_value = true;
        }
        if (!contains(known_flags, name)) {
            problem = "unknown flag: " + name;
            return false;
        }
        if (!has_value && contains(value_flags, name) &&
            i + 1 < args.size() &&
            args[i + 1].rfind("--", 0) != 0) {
            value = args[++i];
            has_value = true;
        }
        flags.emplace_back(name, has_value ? value : std::string());
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> raw(argv + 1, argv + argc);
    if (raw.empty())
        return usage();
    const std::string cmd = raw[0];
    const std::vector<std::string> rest(raw.begin() + 1, raw.end());

    // Per-subcommand flag tables; anything else is a usage error.
    std::vector<std::string> known;
    std::vector<std::string> valued;
    if (cmd == "replay" || cmd == "snapshot" || cmd == "restore") {
        known = {"--audit", "--fault-rber", "--fault-seed",
                 "--fault-program-fail", "--fault-erase-fail",
                 "--retries", "--metrics-json", "--trace-out",
                 "--trace-csv", "--sample-window-ms"};
        valued = known;
        known.push_back("--attribution");
        if (cmd == "replay") {
            known.insert(known.end(),
                         {"--spo-at", "--spo-random", "--spo-notify",
                          "--spo-delay-ms"});
            valued.insert(valued.end(),
                          {"--spo-at", "--spo-random", "--spo-delay-ms"});
        } else if (cmd == "snapshot") {
            known.push_back("--at");
            valued.push_back("--at");
        }
    } else if (cmd == "sweep") {
        known = {"--schemes", "--ablate", "--scale", "--seed",
                 "--jobs", "--metrics-json"};
        valued = known;
        known.push_back("--attribution");
    } else if (cmd == "ingest") {
        known = {"--volume", "--target-units", "--name",
                 "--metrics-json"};
        valued = known;
    } else if (cmd == "trace-info") {
        known = {"--metrics-json"};
        valued = known;
    }
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> flags;
    std::string problem;
    if (!splitArgs(rest, known, valued, pos, flags, problem))
        return usageError(problem);

    if (cmd == "list") {
        if (!pos.empty())
            return usageError("list takes no arguments");
        return cmdList();
    }
    if (cmd == "generate") {
        if (pos.size() < 2 || pos.size() > 4)
            return usageError(
                "generate needs <app> <out> [scale] [seed]");
        double scale = 1.0;
        std::uint64_t seed = 1;
        if (pos.size() > 2 && (!parseF64(pos[2], scale) || scale <= 0))
            return usageError("bad scale: " + pos[2]);
        if (pos.size() > 3 && !parseU64(pos[3], seed))
            return usageError("bad seed: " + pos[3]);
        return cmdGenerate(pos[0], pos[1], scale, seed);
    }
    if (cmd == "analyze") {
        if (pos.size() != 1)
            return usageError("analyze needs exactly <trace-file>");
        return cmdAnalyze(pos[0]);
    }
    if (cmd == "replay" || cmd == "snapshot" || cmd == "restore") {
        RunMode mode = cmd == "snapshot"  ? RunMode::Snapshot
                       : cmd == "restore" ? RunMode::Restore
                                          : RunMode::Replay;
        std::string image_path;
        if (mode == RunMode::Replay) {
            if (pos.empty() || pos.size() > 2)
                return usageError(
                    "replay needs <trace-file> [4PS|8PS|HPS|HSLC]");
        } else {
            if (pos.size() < 2 || pos.size() > 3)
                return usageError(
                    cmd + " needs <trace-file> <image-file> "
                          "[4PS|8PS|HPS|HSLC]");
            image_path = pos[1];
            pos.erase(pos.begin() + 1);
        }
        core::ExperimentOptions opts;
        ObsOutputs outs;
        SpoRandomArgs spo_random;
        bool have_at = false;
        for (const auto &[name, value] : flags) {
            if (name == "--audit") {
                opts.auditEveryEvents = 10000;
                if (!value.empty() &&
                    (!parseU64(value, opts.auditEveryEvents) ||
                     opts.auditEveryEvents == 0))
                    return usageError("bad --audit interval: " + value);
            } else if (name == "--fault-rber") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.baseRber) ||
                    opts.fault.baseRber < 0)
                    return usageError("bad --fault-rber: " + value);
            } else if (name == "--fault-seed") {
                opts.fault.enabled = true;
                if (!parseU64(value, opts.fault.seed))
                    return usageError("bad --fault-seed: " + value);
            } else if (name == "--fault-program-fail") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.programFailProb) ||
                    opts.fault.programFailProb < 0 ||
                    opts.fault.programFailProb > 1)
                    return usageError("bad --fault-program-fail: " +
                                      value);
            } else if (name == "--fault-erase-fail") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.eraseFailProb) ||
                    opts.fault.eraseFailProb < 0 ||
                    opts.fault.eraseFailProb > 1)
                    return usageError("bad --fault-erase-fail: " +
                                      value);
            } else if (name == "--retries") {
                std::uint64_t n = 0;
                if (!parseU64(value, n) || n > 1000)
                    return usageError("bad --retries: " + value);
                opts.hostMaxRetries = static_cast<std::uint32_t>(n);
            } else if (name == "--metrics-json") {
                if (value.empty())
                    return usageError("--metrics-json needs a file");
                outs.metricsJson = value;
                opts.obs.metrics = true;
            } else if (name == "--trace-out") {
                if (value.empty())
                    return usageError("--trace-out needs a file");
                outs.chromeTrace = value;
                opts.obs.traceSpans = true;
            } else if (name == "--trace-csv") {
                if (value.empty())
                    return usageError("--trace-csv needs a file");
                outs.biotracerCsv = value;
                opts.obs.traceSpans = true;
            } else if (name == "--sample-window-ms") {
                std::uint64_t ms = 0;
                if (!parseU64(value, ms) || ms == 0)
                    return usageError("bad --sample-window-ms: " +
                                      value);
                opts.obs.sampleWindow =
                    sim::milliseconds(static_cast<std::int64_t>(ms));
            } else if (name == "--attribution") {
                if (!value.empty())
                    return usageError("--attribution takes no value");
                opts.obs.attribution = true;
            } else if (name == "--spo-at") {
                for (const std::string &s : splitList(value)) {
                    std::uint64_t ns = 0;
                    if (!parseU64(s, ns) || ns == 0)
                        return usageError("bad --spo-at tick: " + s);
                    opts.spo.ticks.push_back(
                        static_cast<sim::Time>(ns));
                }
                if (opts.spo.ticks.empty())
                    return usageError("--spo-at needs a tick list");
                std::sort(opts.spo.ticks.begin(),
                          opts.spo.ticks.end());
            } else if (name == "--spo-random") {
                const std::vector<std::string> parts =
                    splitList(value);
                if (parts.size() != 2 ||
                    !parseU64(parts[0], spo_random.count) ||
                    spo_random.count == 0 ||
                    spo_random.count > 100000 ||
                    !parseU64(parts[1], spo_random.seed))
                    return usageError(
                        "bad --spo-random (want N,SEED): " + value);
            } else if (name == "--spo-notify") {
                if (!value.empty())
                    return usageError("--spo-notify takes no value");
                opts.spo.notify = true;
            } else if (name == "--spo-delay-ms") {
                std::uint64_t ms = 0;
                if (!parseU64(value, ms) || ms == 0)
                    return usageError("bad --spo-delay-ms: " + value);
                opts.spo.powerOnDelay =
                    sim::milliseconds(static_cast<std::int64_t>(ms));
            } else if (name == "--at") {
                std::uint64_t ns = 0;
                if (!parseU64(value, ns))
                    return usageError("bad --at: " + value);
                opts.snapshotAt = static_cast<sim::Time>(ns);
                have_at = true;
            }
        }
        if (opts.obs.sampleWindow > 0 && outs.metricsJson.empty())
            return usageError(
                "--sample-window-ms requires --metrics-json");
        if (opts.obs.attribution && outs.metricsJson.empty())
            return usageError("--attribution requires --metrics-json");
        if (mode == RunMode::Snapshot && !have_at)
            return usageError("snapshot requires --at=NS");
        return cmdReplay(pos[0], pos.size() > 1 ? pos[1] : "HPS", opts,
                         outs, spo_random, mode, image_path);
    }
    if (cmd == "ingest") {
        if (pos.size() != 3)
            return usageError(
                "ingest needs <format> <in-file> <out-file>");
        trace::ingest::IngestOptions iopts;
        std::string metrics_json;
        for (const auto &[name, value] : flags) {
            if (name == "--volume") {
                if (value.empty())
                    return usageError("--volume needs an id");
                iopts.volume = value;
            } else if (name == "--target-units") {
                if (!parseU64(value, iopts.targetUnits) ||
                    iopts.targetUnits == 0)
                    return usageError("bad --target-units: " + value);
            } else if (name == "--name") {
                if (value.empty())
                    return usageError("--name needs a value");
                iopts.name = value;
            } else if (name == "--metrics-json") {
                if (value.empty())
                    return usageError("--metrics-json needs a file");
                metrics_json = value;
            }
        }
        return cmdIngest(pos[0], pos[1], pos[2], iopts, metrics_json);
    }
    if (cmd == "trace-info") {
        if (pos.size() != 1)
            return usageError("trace-info needs exactly <trace-file>");
        std::string metrics_json;
        for (const auto &[name, value] : flags) {
            if (name == "--metrics-json") {
                if (value.empty())
                    return usageError("--metrics-json needs a file");
                metrics_json = value;
            }
        }
        return cmdTraceInfo(pos[0], metrics_json);
    }
    if (cmd == "explain") {
        if (pos.size() != 1 || !flags.empty())
            return usageError("explain needs exactly <report.json>");
        return cmdExplain(pos[0]);
    }
    if (cmd == "diff") {
        if (pos.size() != 2 || !flags.empty())
            return usageError(
                "diff needs exactly <before.json> <after.json>");
        return cmdDiff(pos[0], pos[1]);
    }
    if (cmd == "compare") {
        if (pos.empty() || pos.size() > 2)
            return usageError("compare needs <app> [scale]");
        double scale = 0.5;
        if (pos.size() > 1 && (!parseF64(pos[1], scale) || scale <= 0))
            return usageError("bad scale: " + pos[1]);
        return cmdCompare(pos[0], scale);
    }
    if (cmd == "sweep") {
        SweepArgs sa;
        sa.apps = pos;
        for (const auto &[name, value] : flags) {
            if (name == "--schemes") {
                for (const std::string &s : splitList(value)) {
                    core::SchemeKind kind;
                    if (!parseScheme(s, kind))
                        return usageError("bad --schemes entry: " + s);
                    sa.schemes.push_back(kind);
                }
                if (sa.schemes.empty())
                    return usageError("--schemes needs a list");
            } else if (name == "--ablate") {
                for (const std::string &s : splitList(value)) {
                    SweepVariant variant;
                    if (!parseVariant(s, variant))
                        return usageError("bad --ablate entry: " + s);
                    sa.variants.push_back(std::move(variant));
                }
                if (sa.variants.empty())
                    return usageError("--ablate needs a list");
            } else if (name == "--scale") {
                if (!parseF64(value, sa.scale) || sa.scale <= 0)
                    return usageError("bad --scale: " + value);
            } else if (name == "--seed") {
                if (!parseU64(value, sa.seed))
                    return usageError("bad --seed: " + value);
            } else if (name == "--jobs") {
                if (!parseJobs(value, sa.jobs))
                    return usageError("bad --jobs: " + value);
            } else if (name == "--metrics-json") {
                if (value.empty())
                    return usageError("--metrics-json needs a file");
                sa.metricsJson = value;
            } else if (name == "--attribution") {
                if (!value.empty())
                    return usageError("--attribution takes no value");
                sa.attribution = true;
            }
        }
        if (sa.attribution && sa.metricsJson.empty())
            return usageError("--attribution requires --metrics-json");
        if (sa.schemes.empty())
            sa.schemes.assign(core::allSchemes().begin(),
                              core::allSchemes().end());
        if (sa.variants.empty()) {
            SweepVariant baseline;
            parseVariant("baseline", baseline);
            sa.variants.push_back(std::move(baseline));
        }
        return cmdSweep(sa);
    }
    return usageError("unknown command: " + cmd);
}
