/**
 * @file
 * emmcsim_cli: command-line front end to the library.
 *
 * Subcommands:
 *   list                               show the 25 built-in profiles
 *   generate <app> <out> [scale] [seed]  write a trace file
 *   analyze <trace-file>               Table III/IV-style report
 *   replay <trace-file> [scheme] [--audit [N]]
 *                                      replay on 4PS/8PS/HPS/HSLC,
 *                                      print the measured metrics;
 *                                      --audit runs full invariant
 *                                      audits every N events (default
 *                                      10000) and reports the outcome
 *   compare <app> [scale]              run the Fig 8/9 comparison
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/distributions.hh"
#include "check/audit.hh"
#include "sim/logging.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
cmdList()
{
    core::TablePrinter table(
        {"Name", "Requests", "Duration (s)", "Write %", "Description"});
    for (const workload::AppProfile &p : workload::allProfiles()) {
        table.addRow({p.name, core::fmt(p.requestCount),
                      core::fmt(sim::toSeconds(p.duration), 0),
                      core::fmt(100.0 * p.writeFraction, 1),
                      p.description});
    }
    table.print(std::cout);
    return 0;
}

int
cmdGenerate(const std::string &app, const std::string &out,
            double scale, std::uint64_t seed)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, seed);
    trace::Trace t = gen.generate(scale);
    t.saveFile(out);
    std::cout << "wrote " << t.size() << " requests ("
              << t.totalBytes() / 1024 << " KB) to " << out << "\n";
    return 0;
}

void
printStats(const trace::Trace &t)
{
    analysis::SizeStats ss = analysis::computeSizeStats(t);
    analysis::TimingStats ts = analysis::computeTimingStats(t);
    core::TablePrinter table({"Metric", "Value"});
    table.addRow({"Requests", core::fmt(ss.requests)});
    table.addRow({"Data size (KB)", core::fmt(ss.dataSizeKb, 0)});
    table.addRow({"Ave size (KB)", core::fmt(ss.aveSizeKb, 1)});
    table.addRow({"Write requests (%)", core::fmt(ss.writeReqPct, 2)});
    table.addRow({"Duration (s)", core::fmt(ts.durationSec, 1)});
    table.addRow({"Arrival rate (req/s)", core::fmt(ts.arrivalRate, 2)});
    table.addRow({"Spatial locality (%)", core::fmt(ts.spatialPct, 2)});
    table.addRow(
        {"Temporal locality (%)", core::fmt(ts.temporalPct, 2)});
    if (ts.replayed) {
        table.addRow({"NoWait ratio (%)", core::fmt(ts.noWaitPct, 1)});
        table.addRow(
            {"Mean service (ms)", core::fmt(ts.meanServiceMs, 2)});
        table.addRow(
            {"Mean response (ms)", core::fmt(ts.meanResponseMs, 2)});
    }
    table.print(std::cout);
}

int
cmdAnalyze(const std::string &path)
{
    trace::Trace t = trace::Trace::loadFile(path);
    std::string problem = t.validate();
    if (!problem.empty()) {
        std::cerr << "invalid trace: " << problem << "\n";
        return 1;
    }
    std::cout << "Trace \"" << t.name() << "\" (" << path << ")\n\n";
    printStats(t);
    return 0;
}

core::SchemeKind
parseScheme(const std::string &name)
{
    for (core::SchemeKind kind : core::extendedSchemes()) {
        if (core::schemeName(kind) == name)
            return kind;
    }
    sim::fatal("unknown scheme (use 4PS, 8PS, HPS, or HSLC): " + name);
}

int
cmdReplay(const std::string &path, const std::string &scheme,
          std::uint64_t audit_every)
{
    trace::Trace t = trace::Trace::loadFile(path);
    core::SchemeKind kind = parseScheme(scheme);
    core::ExperimentOptions opts;
    opts.auditEveryEvents = audit_every;
    core::CaseResult res = core::runCase(t, kind, opts);
    std::cout << "Replayed \"" << t.name() << "\" on " << res.scheme
              << "\n\n";
    printStats(res.replayed);
    std::cout << "\nSpace utilization: "
              << core::fmt(res.spaceUtilization, 3) << "\n";
    if (audit_every > 0) {
        std::cout << "\n";
        core::printAuditReport(std::cout, res.audit);
        if (!res.audit.clean())
            return 3;
    }
    return 0;
}

int
cmdCompare(const std::string &app, double scale)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(scale);
    core::TablePrinter table(
        {"Scheme", "MRT (ms)", "Mean serv (ms)", "Space util"});
    for (core::SchemeKind kind : core::extendedSchemes()) {
        core::CaseResult res = core::runCase(t, kind);
        table.addRow({res.scheme, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3)});
    }
    table.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr << "usage:\n"
                 "  emmcsim_cli list\n"
                 "  emmcsim_cli generate <app> <out> [scale] [seed]\n"
                 "  emmcsim_cli analyze <trace-file>\n"
                 "  emmcsim_cli replay <trace-file> [4PS|8PS|HPS|HSLC] "
                 "[--audit [N]]\n"
                 "  emmcsim_cli compare <app> [scale]\n";
    return 2;
}

/**
 * Strip "--audit [N]" from @p args.
 * @return audit interval in events; 0 when the flag is absent.
 */
std::uint64_t
extractAuditFlag(std::vector<std::string> &args)
{
    constexpr std::uint64_t kDefaultInterval = 10000;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--audit")
            continue;
        std::uint64_t every = kDefaultInterval;
        std::size_t consumed = 1;
        if (i + 1 < args.size()) {
            char *end = nullptr;
            const std::uint64_t n =
                std::strtoull(args[i + 1].c_str(), &end, 10);
            if (end != nullptr && *end == '\0' && n > 0) {
                every = n;
                consumed = 2;
            }
        }
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() +
                       static_cast<std::ptrdiff_t>(i + consumed));
        return every;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const std::uint64_t audit_every = extractAuditFlag(args);
    if (args.empty())
        return usage();
    const std::string cmd = args[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "generate" && args.size() >= 3) {
        return cmdGenerate(
            args[1], args[2],
            args.size() > 3 ? std::atof(args[3].c_str()) : 1.0,
            args.size() > 4
                ? std::strtoull(args[4].c_str(), nullptr, 10)
                : 1);
    }
    if (cmd == "analyze" && args.size() >= 2)
        return cmdAnalyze(args[1]);
    if (cmd == "replay" && args.size() >= 2) {
        return cmdReplay(args[1], args.size() > 2 ? args[2] : "HPS",
                         audit_every);
    }
    if (cmd == "compare" && args.size() >= 2) {
        return cmdCompare(args[1], args.size() > 2
                                       ? std::atof(args[2].c_str())
                                       : 0.5);
    }
    return usage();
}
