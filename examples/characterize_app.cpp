/**
 * @file
 * Characterize one application the way Section III of the paper does:
 * generate its trace, replay it on the conventional eMMC model with
 * power-mode emulation, and print its Table III row, Table IV row,
 * and Fig 4/5/6 distributions.
 *
 * Usage: characterize_app [app-name] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/distributions.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

void
printDistribution(const std::string &title, const sim::Histogram &h,
                  const std::vector<std::string> &labels)
{
    std::cout << "\n" << title << "\n";
    core::TablePrinter table({"Bucket", "Share (%)"});
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        table.addRow({labels[i], core::fmt(100.0 * h.fractionAt(i), 1)});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Facebook";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }

    workload::TraceGenerator gen(*profile, /*seed=*/7);
    trace::Trace t = gen.generate(scale);

    std::cout << "Characterization of \"" << profile->name << "\" — "
              << profile->description << "\n";

    // Table III row.
    analysis::SizeStats ss = analysis::computeSizeStats(t);
    std::cout << "\nSize statistics (Table III row):\n";
    core::TablePrinter size_table({"Metric", "Value"});
    size_table.addRow({"Data size (KB)", core::fmt(ss.dataSizeKb, 0)});
    size_table.addRow({"Requests", core::fmt(ss.requests)});
    size_table.addRow({"Max size (KB)", core::fmt(ss.maxSizeKb, 0)});
    size_table.addRow({"Ave size (KB)", core::fmt(ss.aveSizeKb, 1)});
    size_table.addRow({"Ave read size (KB)", core::fmt(ss.aveReadKb, 1)});
    size_table.addRow(
        {"Ave write size (KB)", core::fmt(ss.aveWriteKb, 1)});
    size_table.addRow(
        {"Write requests (%)", core::fmt(ss.writeReqPct, 2)});
    size_table.addRow(
        {"Write data (%)", core::fmt(ss.writeSizePct, 2)});
    size_table.print(std::cout);

    // Replay on the conventional device to obtain timing columns.
    core::ExperimentOptions opts;
    opts.powerMode = true;
    core::CaseResult res = core::runCase(t, core::SchemeKind::PS4, opts);
    analysis::TimingStats ts =
        analysis::computeTimingStats(res.replayed);

    std::cout << "\nTiming statistics (Table IV row, replayed on the "
                 "4PS device):\n";
    core::TablePrinter time_table({"Metric", "Value"});
    time_table.addRow({"Duration (s)", core::fmt(ts.durationSec, 0)});
    time_table.addRow(
        {"Arrival rate (req/s)", core::fmt(ts.arrivalRate, 2)});
    time_table.addRow(
        {"Access rate (KB/s)", core::fmt(ts.accessRateKbps, 2)});
    time_table.addRow({"NoWait ratio (%)", core::fmt(ts.noWaitPct, 0)});
    time_table.addRow(
        {"Mean service (ms)", core::fmt(ts.meanServiceMs, 2)});
    time_table.addRow(
        {"Mean response (ms)", core::fmt(ts.meanResponseMs, 2)});
    time_table.addRow(
        {"Spatial locality (%)", core::fmt(ts.spatialPct, 2)});
    time_table.addRow(
        {"Temporal locality (%)", core::fmt(ts.temporalPct, 2)});
    time_table.print(std::cout);

    printDistribution("Request size distribution (Fig 4):",
                      analysis::sizeDistribution(t),
                      analysis::sizeBucketLabels());
    printDistribution("Response time distribution (Fig 5):",
                      analysis::responseDistribution(res.replayed),
                      analysis::responseBucketLabels());
    printDistribution("Inter-arrival distribution (Fig 6):",
                      analysis::interArrivalDistribution(t),
                      analysis::interArrivalBucketLabels());
    return 0;
}
