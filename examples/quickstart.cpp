/**
 * @file
 * Quickstart: generate a smartphone workload, replay it on the three
 * Table V eMMC schemes, and print the headline metrics.
 *
 * Usage: quickstart [app-name] [scale]
 *   app-name  One of the 18 applications or 7 combos (default Twitter).
 *   scale     Request-count scale factor (default 0.2 for a fast run).
 */

#include <cstdlib>
#include <iostream>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Twitter";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        std::cerr << "known applications:\n";
        for (const auto &p : workload::allProfiles())
            std::cerr << "  " << p.name << "\n";
        return 1;
    }

    std::cout << "Generating \"" << profile->name
              << "\" (" << profile->description << ") at scale " << scale
              << "...\n";
    workload::TraceGenerator gen(*profile, /*seed=*/1);
    trace::Trace t = gen.generate(scale);
    std::cout << "  " << t.size() << " requests, "
              << t.totalBytes() / 1024 << " KB accessed, "
              << core::fmt(sim::toSeconds(t.duration()), 1)
              << " s duration\n\n";

    core::TablePrinter table({"Scheme", "MRT (ms)", "Mean serv (ms)",
                              "NoWait %", "Space util"});
    for (core::SchemeKind kind : core::allSchemes()) {
        core::CaseResult res = core::runCase(t, kind);
        table.addRow({res.scheme, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.noWaitPct, 1),
                      core::fmt(res.spaceUtilization, 3)});
    }
    table.print(std::cout);
    return 0;
}
