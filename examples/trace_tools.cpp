/**
 * @file
 * Trace tooling walkthrough: generate an application trace, save it
 * in the BIOtracer-style text format, load it back, merge it with a
 * second app into a combo stream (Section III-D), replay the combo,
 * and save the replayed trace with its measured timestamps.
 *
 * Usage: trace_tools [out-dir] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/scheme.hh"
#include "host/replayer.hh"
#include "workload/combo.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const std::string out_dir = argc > 1 ? argv[1] : ".";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

    // 1. Generate and persist a single-app trace.
    const workload::AppProfile *music = workload::findProfile("Music");
    workload::TraceGenerator gen(*music, /*seed=*/3);
    trace::Trace music_trace = gen.generate(scale);
    const std::string music_path = out_dir + "/music.emmctrace";
    music_trace.saveFile(music_path);
    std::cout << "wrote " << music_trace.size() << " requests to "
              << music_path << "\n";

    // 2. Load it back and verify integrity.
    trace::Trace loaded = trace::Trace::loadFile(music_path);
    std::string problem = loaded.validate();
    std::cout << "reloaded " << loaded.size() << " requests ("
              << (problem.empty() ? "valid" : problem) << ")\n";

    // 3. Compose a concurrent-app stream the way a user runs
    //    WebBrowsing while listening to Music.
    trace::Trace combo =
        workload::generateComboByMerge("Music/WB", /*seed=*/3, scale);
    std::cout << "merged combo \"" << combo.name() << "\" has "
              << combo.size() << " requests over "
              << sim::toSeconds(combo.duration()) << " s\n";

    // 4. Replay the combo on an HPS device and persist the replayed
    //    trace: records now carry BIOtracer's service/finish stamps.
    sim::Simulator s;
    auto dev = core::makeDevice(s, core::SchemeKind::HPS);
    host::Replayer rep(s, *dev);
    trace::Trace replayed = rep.replay(combo);
    const std::string replay_path = out_dir + "/music_wb.replayed";
    replayed.saveFile(replay_path);
    std::cout << "replayed on HPS: MRT "
              << dev->stats().responseMs.mean() << " ms, NoWait "
              << 100.0 * dev->stats().noWaitRatio() << "% -> "
              << replay_path << "\n";
    return 0;
}
