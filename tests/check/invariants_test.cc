/**
 * @file
 * Tests for the check/ invariant-audit subsystem.
 *
 * Strategy: build a real (scaled-down) device, replay real traffic,
 * and prove two things about every checker — it is quiet on a healthy
 * device, and it fires when we plant exactly the corruption it exists
 * to catch (via the *ForTest hooks, which skew raw state without
 * maintaining the counters).
 */

#include <gtest/gtest.h>

#include "check/audit.hh"
#include "check/invariants.hh"
#include "core/experiment.hh"
#include "core/scheme.hh"
#include "flash/pool.hh"
#include "ftl/ftl.hh"
#include "host/replayer.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

/** A replayed scaled-down device, shared scaffolding for the tests. */
class CheckTest : public ::testing::Test
{
  protected:
    void
    buildAndReplay(core::SchemeKind kind = core::SchemeKind::HPS)
    {
        core::ExperimentOptions opts;
        opts.capacityScale = 0.05; // keep the audit scans fast
        emmc::EmmcConfig cfg =
            core::applyOptions(core::schemeConfig(kind), opts);
        dev_ = core::makeDevice(sim_, kind, cfg);

        const workload::AppProfile *p =
            workload::findProfile("Booting");
        ASSERT_NE(p, nullptr);
        workload::TraceGenerator gen(*p, /*seed=*/7);
        trace_ = gen.generate(/*scale=*/0.05);
        host::Replayer rep(sim_, *dev_);
        rep.replay(trace_);
    }

    /** First mapped logical unit; the replay guarantees one exists. */
    flash::Lpn
    someMappedLpn() const
    {
        const ftl::PageMap &map = dev_->ftl().map();
        for (std::uint64_t u = 0; u < map.logicalUnits(); ++u) {
            if (map.mapped(static_cast<flash::Lpn>(u)))
                return static_cast<flash::Lpn>(u);
        }
        ADD_FAILURE() << "replay left no mapped unit";
        return flash::Lpn{0};
    }

    sim::Simulator sim_;
    std::unique_ptr<emmc::EmmcDevice> dev_;
    trace::Trace trace_;
};

TEST_F(CheckTest, CleanDeviceAuditsClean)
{
    buildAndReplay();
    check::AuditReport report = check::auditNow(sim_, *dev_);
    EXPECT_TRUE(report.clean());
    EXPECT_GT(report.totalChecks(), 0u);
    // The standard registration covers all ten checker families.
    EXPECT_EQ(report.checkers.size(), 10u);
}

TEST_F(CheckTest, PhaseConservationCheckerCatchesLedgerDrift)
{
    buildAndReplay();

    // Healthy replay: every completed request's ledger summed exactly.
    check::CheckContext clean("test");
    check::checkPhaseConservation(*dev_, clean);
    EXPECT_EQ(clean.failures(), 0u);

    // Plant a violation count without an actual conservation break
    // (the device DCHECKs the real thing per completion in debug
    // builds, so the counter is the only stageable state).
    dev_->corruptLedgerViolationsForTest(2);
    check::CheckContext ctx("test");
    check::checkPhaseConservation(*dev_, ctx);
    EXPECT_GT(ctx.failures(), 0u);
    ASSERT_FALSE(ctx.violations().empty());
}

TEST_F(CheckTest, BijectionCheckerCatchesMapCorruption)
{
    buildAndReplay();
    const flash::Lpn lpn = someMappedLpn();

    // Point the entry at an impossible unit slot; the pools and their
    // counters stay untouched, so only the bijection checker can see
    // the damage.
    ftl::MapEntry e = dev_->ftl().map().lookup(lpn);
    e.unit = 9; // no pool has 9 units per page
    dev_->ftl().mapForTest().set(lpn, e);

    check::CheckContext ctx("test");
    check::checkMappingBijection(dev_->ftl(), ctx);
    EXPECT_GT(ctx.failures(), 0u);
    ASSERT_FALSE(ctx.violations().empty());

    check::CheckContext cons("test");
    check::checkUnitConservation(dev_->ftl(), cons);
    EXPECT_EQ(cons.failures(), 0u) << "counters were not touched";
}

TEST_F(CheckTest, ConservationCheckerCatchesOrphanedUnit)
{
    buildAndReplay();
    const flash::Lpn lpn = someMappedLpn();

    // Drop the mapping without invalidating the physical unit: the
    // forward map is still consistent but one valid unit is orphaned.
    dev_->ftl().mapForTest().clear(lpn);

    check::CheckContext ctx("test");
    check::checkUnitConservation(dev_->ftl(), ctx);
    EXPECT_GT(ctx.failures(), 0u);
}

TEST_F(CheckTest, PoolCheckerCatchesValidCounterDrift)
{
    buildAndReplay();
    flash::BlockPool &pool = dev_->ftl().array().plane(0).pool(0);
    pool.corruptValidUnitsForTest(+1);

    check::CheckContext ctx("test");
    check::checkPoolAccounting(pool, "plane 0 pool 0", ctx);
    EXPECT_GT(ctx.failures(), 0u);

    // The array-wide sweep finds the same drift.
    check::CheckContext arr("test");
    check::checkArrayAccounting(dev_->ftl().array(), arr);
    EXPECT_GT(arr.failures(), 0u);
}

TEST_F(CheckTest, PoolCheckerCatchesFreeCounterDrift)
{
    buildAndReplay();
    flash::BlockPool &pool = dev_->ftl().array().plane(0).pool(0);
    pool.corruptFreeCountForTest(-1);

    check::CheckContext ctx("test");
    check::checkPoolAccounting(pool, "plane 0 pool 0", ctx);
    EXPECT_GT(ctx.failures(), 0u);
}

TEST_F(CheckTest, PoolCheckerCatchesDataOnFreeBlock)
{
    buildAndReplay();
    flash::BlockPool &pool = dev_->ftl().array().plane(0).pool(0);

    std::int32_t free_block = -1;
    for (std::uint32_t b = 0; b < pool.blockCount(); ++b) {
        if (pool.blockFree(flash::BlockId{b})) {
            free_block = static_cast<std::int32_t>(b);
            break;
        }
    }
    ASSERT_GE(free_block, 0) << "scaled device should keep free blocks";

    // A valid unit on an erased block also sits beyond the write
    // pointer and skews the per-block valid sum: several predicates
    // must trip at once.
    const flash::Ppn ppn = units::blockFirstPage(
        flash::BlockId{static_cast<std::uint32_t>(free_block)},
        pool.pagesPerBlock());
    pool.corruptUnitForTest(ppn, 0, flash::Lpn{5}, /*valid=*/true);

    check::CheckContext ctx("test");
    check::checkPoolAccounting(pool, "plane 0 pool 0", ctx);
    EXPECT_GE(ctx.failures(), 2u);
}

TEST(EventQueueAuditTest, CleanQueuePasses)
{
    sim::EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    std::vector<std::string> violations;
    q.auditInvariants(violations);
    EXPECT_TRUE(violations.empty());
}

TEST(EventQueueAuditTest, CatchesTimeGoingBackwards)
{
    sim::EventQueue q;
    q.schedule(100, [] {});
    sim::Time when = 0;
    sim::EventAction action;
    ASSERT_TRUE(q.pop(when, action));
    EXPECT_EQ(when, 100);

    // A pending event older than the last pop is the bug this audit
    // exists for. schedule() itself now DCHECKs against it, so stage
    // the corrupt state through the test backdoor instead.
    q.schedule(150, [] {});
    q.corruptLastPopTimeForTest(200);
    std::vector<std::string> violations;
    q.auditInvariants(violations);
    EXPECT_FALSE(violations.empty());
}

TEST(EventQueueAuditTest, CatchesLiveCountDrift)
{
    sim::EventQueue q;
    q.schedule(10, [] {});
    q.corruptLiveCountForTest(+1);
    std::vector<std::string> violations;
    q.auditInvariants(violations);
    EXPECT_FALSE(violations.empty());
}

TEST(TraceCheckerTest, CatchesUnsortedArrivals)
{
    trace::Trace t("bad");
    trace::TraceRecord a;
    a.arrival = 100;
    a.lbaSector = units::Lba{0};
    a.sizeBytes = units::Bytes{4096};
    trace::TraceRecord b = a;
    b.arrival = 50; // out of order
    b.lbaSector = units::Lba{8};
    // Bypass Trace::push, which would (rightly) refuse this.
    t.records().push_back(a);
    t.records().push_back(b);

    check::CheckContext ctx("test");
    check::checkTrace(t, /*logical_units=*/0, ctx);
    EXPECT_GT(ctx.failures(), 0u);
}

TEST(TraceCheckerTest, CatchesReplayStepInversion)
{
    trace::Trace t("bad");
    trace::TraceRecord r;
    r.arrival = 0;
    r.lbaSector = units::Lba{0};
    r.sizeBytes = units::Bytes{4096};
    r.serviceStart = 10;
    r.finish = 5; // finished before service started
    t.records().push_back(r);

    check::CheckContext ctx("test");
    check::checkTrace(t, /*logical_units=*/0, ctx);
    EXPECT_GT(ctx.failures(), 0u);
}

TEST(TraceCheckerTest, CatchesMisalignedRequest)
{
    trace::Trace t("bad");
    trace::TraceRecord r;
    r.arrival = 0;
    r.lbaSector = units::Lba{3};      // not 4KB-aligned
    r.sizeBytes = units::Bytes{1024};   // not a 4KB multiple
    t.records().push_back(r);

    check::CheckContext ctx("test");
    check::checkTrace(t, /*logical_units=*/0, ctx);
    EXPECT_GT(ctx.failures(), 0u);
}

TEST(AuditorTest, ReportAggregatesAcrossPasses)
{
    check::Auditor auditor;
    int runs = 0;
    auditor.addChecker("counting", [&](check::CheckContext &ctx) {
        ++runs;
        ctx.pass(3);
        if (runs == 2)
            ctx.fail("planted failure");
    });
    EXPECT_EQ(auditor.runAll(), 0u);
    EXPECT_EQ(auditor.runAll(), 1u);
    const check::AuditReport &rep = auditor.report();
    EXPECT_EQ(rep.passes, 2u);
    EXPECT_EQ(rep.totalChecks(), 7u); // 3 + (3 passed + 1 failed)
    EXPECT_EQ(rep.totalViolations(), 1u);
    EXPECT_FALSE(rep.clean());
    ASSERT_EQ(rep.checkers.size(), 1u);
    EXPECT_EQ(rep.checkers[0].name, "counting");
    ASSERT_EQ(rep.checkers[0].violations.size(), 1u);
    EXPECT_EQ(rep.checkers[0].violations[0], "planted failure");
}

TEST(AuditorTest, ViolationRecordingIsCapped)
{
    check::CheckContext ctx("flood");
    for (int i = 0; i < 100; ++i)
        ctx.fail("boom");
    EXPECT_EQ(ctx.failures(), 100u);
    EXPECT_EQ(ctx.violations().size(), check::CheckContext::kMaxRecorded);
}

/**
 * Regression gate: a full replay with periodic audits enabled must
 * report zero violations — the simulator's bookkeeping holds under
 * real traffic, GC and all.
 */
TEST(AuditRegressionTest, FullReplayUnderAuditIsClean)
{
    const workload::AppProfile *p = workload::findProfile("Booting");
    ASSERT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, /*seed=*/3);
    trace::Trace t = gen.generate(/*scale=*/0.05);

    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    opts.auditEveryEvents = 500;
    core::CaseResult res = core::runCase(t, core::SchemeKind::HPS, opts);

    EXPECT_TRUE(res.audit.clean())
        << res.audit.totalViolations() << " violation(s)";
    EXPECT_GE(res.audit.passes, 2u) << "periodic audits never fired";
    EXPECT_GT(res.audit.totalChecks(), 0u);
}

/** The mutation-granularity hooks also stay clean on real traffic. */
TEST(AuditRegressionTest, MutationHooksStayClean)
{
    sim::Simulator simulator;
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    emmc::EmmcConfig cfg = core::applyOptions(
        core::schemeConfig(core::SchemeKind::PS4), opts);
    auto dev = core::makeDevice(simulator, core::SchemeKind::PS4, cfg);

    check::AuditOptions audit_opts;
    audit_opts.onCommandFinish = true;
    check::DeviceAuditor auditor(simulator, *dev, audit_opts);

    const workload::AppProfile *p = workload::findProfile("Movie");
    ASSERT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, /*seed=*/5);
    trace::Trace t = gen.generate(/*scale=*/0.02);
    host::Replayer rep(simulator, *dev);
    rep.replay(t);

    auditor.runFullAudit();
    auditor.detach();
    EXPECT_TRUE(auditor.report().clean());
    EXPECT_GT(auditor.report().passes, 1u);
}

} // namespace
