/**
 * @file
 * Trace container and serialization tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hh"

using namespace emmcsim;
using namespace emmcsim::trace;

namespace {

TraceRecord
rec(sim::Time arrival, std::uint64_t unit, std::uint64_t units,
    OpType op)
{
    TraceRecord r;
    r.arrival = arrival;
    r.lbaSector = emmcsim::units::unitToLba(
        emmcsim::units::UnitAddr{static_cast<std::int64_t>(unit)});
    r.sizeBytes = emmcsim::units::unitsToBytes(units);
    r.op = op;
    return r;
}

Trace
sampleTrace()
{
    Trace t("Sample");
    t.push(rec(0, 0, 1, OpType::Read));
    t.push(rec(1000, 8, 4, OpType::Write));
    t.push(rec(5000, 0, 2, OpType::Write));
    return t;
}

} // namespace

TEST(TraceRecord, DerivedFields)
{
    TraceRecord r = rec(10, 5, 3, OpType::Write);
    EXPECT_TRUE(r.isWrite());
    EXPECT_EQ(r.sizeUnits(), 3u);
    EXPECT_EQ(r.firstUnit().value(), 5);
    EXPECT_EQ(r.endSector().value(), (5 + 3) * sim::kSectorsPerUnit);
    EXPECT_FALSE(r.replayed());
}

TEST(TraceRecord, TimingAccessors)
{
    TraceRecord r = rec(100, 0, 1, OpType::Read);
    r.serviceStart = 150;
    r.finish = 400;
    EXPECT_TRUE(r.replayed());
    EXPECT_EQ(r.responseTime(), 300);
    EXPECT_EQ(r.serviceTime(), 250);
}

TEST(Trace, AggregateQueries)
{
    Trace t = sampleTrace();
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.totalBytes().value(), 7 * sim::kUnitBytes);
    EXPECT_EQ(t.writtenBytes().value(), 6 * sim::kUnitBytes);
    EXPECT_EQ(t.writeCount(), 2u);
    EXPECT_EQ(t.maxRequestBytes().value(), 4 * sim::kUnitBytes);
    EXPECT_EQ(t.duration(), 5000);
}

TEST(Trace, DurationIncludesReplayFinish)
{
    Trace t = sampleTrace();
    t[2].serviceStart = 5000;
    t[2].finish = 9000;
    EXPECT_EQ(t.duration(), 9000);
}

TEST(Trace, ValidateAcceptsGoodTrace)
{
    EXPECT_EQ(sampleTrace().validate(), "");
}

TEST(Trace, ValidateCatchesUnsorted)
{
    Trace t = sampleTrace();
    t[2].arrival = 1; // now out of order
    EXPECT_NE(t.validate().find("not sorted"), std::string::npos);
}

TEST(Trace, ValidateCatchesMisalignment)
{
    Trace t = sampleTrace();
    t[0].sizeBytes = emmcsim::units::Bytes{1000};
    EXPECT_NE(t.validate().find("4KB-aligned"), std::string::npos);
    Trace t2 = sampleTrace();
    t2[0].lbaSector = emmcsim::units::Lba{1};
    EXPECT_NE(t2.validate().find("lba"), std::string::npos);
}

TEST(Trace, ValidateCatchesBadTimestamps)
{
    Trace t = sampleTrace();
    t[0].serviceStart = 10;
    t[0].finish = 5;
    EXPECT_NE(t.validate().find("timestamps"), std::string::npos);
}

TEST(Trace, SortByArrivalIsStable)
{
    Trace t;
    t.records().push_back(rec(100, 1, 1, OpType::Read));
    t.records().push_back(rec(50, 2, 1, OpType::Read));
    t.records().push_back(rec(100, 3, 1, OpType::Read));
    t.sortByArrival();
    EXPECT_EQ(t[0].firstUnit().value(), 2);
    EXPECT_EQ(t[1].firstUnit().value(), 1);
    EXPECT_EQ(t[2].firstUnit().value(), 3);
}

TEST(TraceDeath, PushOutOfOrderPanics)
{
    Trace t = sampleTrace();
    EXPECT_DEATH(t.push(rec(10, 0, 1, OpType::Read)), "arrival order");
}

TEST(TraceIo, RoundTripWithoutTimestamps)
{
    Trace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);
    Trace back = Trace::load(ss);
    EXPECT_EQ(back.name(), "Sample");
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].arrival, t[i].arrival);
        EXPECT_EQ(back[i].lbaSector, t[i].lbaSector);
        EXPECT_EQ(back[i].sizeBytes, t[i].sizeBytes);
        EXPECT_EQ(back[i].op, t[i].op);
        EXPECT_FALSE(back[i].replayed());
    }
}

TEST(TraceIo, RoundTripWithTimestamps)
{
    Trace t = sampleTrace();
    for (std::size_t i = 0; i < t.size(); ++i) {
        t[i].serviceStart = t[i].arrival + 10;
        t[i].finish = t[i].arrival + 500;
    }
    std::stringstream ss;
    t.save(ss);
    Trace back = Trace::load(ss);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].serviceStart, t[i].serviceStart);
        EXPECT_EQ(back[i].finish, t[i].finish);
    }
}

TEST(TraceIo, LoadSkipsCommentsAndBlankLines)
{
    std::stringstream ss;
    ss << "# emmctrace v1\n# name: X\n\n0 0 4096 R\n\n# trailing\n";
    Trace t = Trace::load(ss);
    EXPECT_EQ(t.name(), "X");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_FALSE(t[0].isWrite());
}

TEST(TraceIo, LoadSortsUnorderedInput)
{
    std::stringstream ss;
    ss << "500 0 4096 W\n100 8 4096 R\n";
    Trace t = Trace::load(ss);
    EXPECT_EQ(t[0].arrival, 100);
    EXPECT_EQ(t[1].arrival, 500);
}

TEST(TraceIo, LowercaseOpsAccepted)
{
    std::stringstream ss;
    ss << "0 0 4096 r\n10 0 4096 w\n";
    Trace t = Trace::load(ss);
    EXPECT_FALSE(t[0].isWrite());
    EXPECT_TRUE(t[1].isWrite());
}

TEST(TraceIo, FileRoundTrip)
{
    Trace t = sampleTrace();
    const std::string path = testing::TempDir() + "/trace_io_test.txt";
    t.saveFile(path);
    Trace back = Trace::loadFile(path);
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.name(), "Sample");
}

TEST(TraceIoErrors, TryLoadAcceptsGoodInput)
{
    std::stringstream ss;
    ss << "# name: Y\n0 0 4096 R\n10 8 4096 W 12 900\n";
    Trace t;
    TraceLoadError err;
    ASSERT_TRUE(Trace::tryLoad(ss, t, err));
    EXPECT_TRUE(err.ok());
    EXPECT_EQ(err.message(), "");
    EXPECT_EQ(t.name(), "Y");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(t[1].replayed());
}

TEST(TraceIoErrors, MalformedRecordReportsLineAndReason)
{
    std::stringstream ss;
    ss << "0 0 4096 R\n1000 zero 4096 W\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.reason.find("malformed record"), std::string::npos);
    EXPECT_NE(err.message().find("line 2: "), std::string::npos);
}

TEST(TraceIoErrors, BadOpReportsTheOffendingCharacter)
{
    std::stringstream ss;
    ss << "0 0 4096 X\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.reason.find("bad op 'X'"), std::string::npos);
}

TEST(TraceIoErrors, NegativeArrivalRejected)
{
    std::stringstream ss;
    ss << "-5 0 4096 R\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.reason.find("negative arrival"), std::string::npos);
}

TEST(TraceIoErrors, LoneServiceTimestampRejected)
{
    // 5 tokens: a service start without its finish partner.
    std::stringstream ss;
    ss << "# header\n\n0 0 4096 R 100\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(err.line, 3u) << "comments and blanks still count";
    EXPECT_NE(err.reason.find("without a finish"), std::string::npos);
}

TEST(TraceIoErrors, TrailingGarbageRejected)
{
    std::stringstream ss;
    ss << "0 0 4096 R 100 200 junk\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.reason.find("trailing garbage"), std::string::npos);
    EXPECT_NE(err.reason.find("junk"), std::string::npos);
}

TEST(TraceIoErrors, UnopenableFileReportsPath)
{
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(
        Trace::tryLoadFile("/nonexistent/path/trace.txt", t, err));
    EXPECT_EQ(err.line, 0u);
    EXPECT_NE(err.reason.find("cannot open"), std::string::npos);
    // Without a line number the message is just the reason.
    EXPECT_EQ(err.message(), err.reason);
}

TEST(TraceIoErrors, FailedLoadLeavesOutputUntouched)
{
    Trace t = sampleTrace();
    std::stringstream ss;
    ss << "0 0 4096 R\nbroken\n";
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(t.size(), 3u) << "partial parse must not leak into out";
    EXPECT_EQ(t.name(), "Sample");
}

TEST(TraceIoErrors, CrlfLinesParseCleanly)
{
    // CRLF input used to embed the '\r' in the parsed name and feed
    // "4096\r" to the size parser; both must strip cleanly.
    std::stringstream ss;
    ss << "# emmctrace v1\r\n# name: Win\r\n# records: 1\r\n"
          "0 0 4096 R\r\n";
    Trace t;
    TraceLoadError err;
    ASSERT_TRUE(Trace::tryLoad(ss, t, err)) << err.message();
    EXPECT_EQ(t.name(), "Win");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].sizeBytes.value(), 4096u);
}

TEST(TraceIoErrors, ZeroSizeRecordRejectedAtLoad)
{
    std::stringstream ss;
    ss << "0 0 0 R\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.reason.find("zero size"), std::string::npos);
}

TEST(TraceIoErrors, MisalignedSizeRejectedAtLoad)
{
    std::stringstream ss;
    ss << "0 0 1000 R\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_NE(err.reason.find("4KB-aligned"), std::string::npos);
}

TEST(TraceIoErrors, MisalignedLbaRejectedAtLoad)
{
    std::stringstream ss;
    ss << "0 3 4096 R\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_NE(err.reason.find("lba"), std::string::npos);
}

TEST(TraceIoErrors, InvertedReplayTimestampsRejectedAtLoad)
{
    std::stringstream ss;
    ss << "100 0 4096 R 90 80\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_NE(err.reason.find("timestamps"), std::string::npos);
}

TEST(TraceIoErrors, RecordCountMismatchRejected)
{
    // A declared count catches truncation that leaves whole lines
    // intact (e.g. a partial download losing the tail).
    std::stringstream ss;
    ss << "# records: 3\n0 0 4096 R\n10 0 4096 W\n";
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_NE(err.reason.find("record count mismatch"),
              std::string::npos);
    EXPECT_NE(err.reason.find("declares 3"), std::string::npos);
    EXPECT_NE(err.reason.find("has 2"), std::string::npos);
}

TEST(TraceIoErrors, RecordCountMatchAccepted)
{
    std::stringstream ss;
    ss << "# records: 2\n0 0 4096 R\n10 0 4096 W\n";
    Trace t;
    TraceLoadError err;
    EXPECT_TRUE(Trace::tryLoad(ss, t, err)) << err.message();
}

TEST(TraceIoErrors, StreamIoErrorReported)
{
    // A stream that dies mid-read (badbit) must not be mistaken for
    // clean EOF. tryLoad checks is.bad() after the loop.
    std::stringstream ss;
    ss << "0 0 4096 R\n";
    ss.setstate(std::ios::badbit);
    Trace t;
    TraceLoadError err;
    EXPECT_FALSE(Trace::tryLoad(ss, t, err));
    EXPECT_NE(err.reason.find("I/O error"), std::string::npos);
}

TEST(TraceIoDeath, MalformedLineFatal)
{
    std::stringstream ss;
    ss << "0 zero 4096 R\n";
    EXPECT_DEATH(Trace::load(ss), "malformed");
}

TEST(TraceIoDeath, BadOpFatal)
{
    std::stringstream ss;
    ss << "0 0 4096 X\n";
    EXPECT_DEATH(Trace::load(ss), "bad op");
}

TEST(TraceIoDeath, MissingFileFatal)
{
    EXPECT_DEATH(Trace::loadFile("/nonexistent/path/trace.txt"),
                 "cannot open");
}
