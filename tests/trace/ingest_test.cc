/**
 * @file
 * Ingestion pipeline tests: varint coding, the emmctrace-bin v1
 * round trip and its corruption detection, streaming TraceSources,
 * and the foreign-format importers on checked-in fixtures.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/binio.hh"
#include "trace/binfmt.hh"
#include "trace/ingest/formats.hh"
#include "trace/ingest/ingest.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

using namespace emmcsim;
using namespace emmcsim::trace;

namespace {

TraceRecord
rec(sim::Time arrival, std::uint64_t unit, std::uint64_t units,
    OpType op)
{
    TraceRecord r;
    r.arrival = arrival;
    r.lbaSector = emmcsim::units::unitToLba(
        emmcsim::units::UnitAddr{static_cast<std::int64_t>(unit)});
    r.sizeBytes = emmcsim::units::unitsToBytes(units);
    r.op = op;
    return r;
}

Trace
sampleTrace(std::size_t n = 3)
{
    Trace t("Sample");
    for (std::size_t i = 0; i < n; ++i) {
        t.push(rec(static_cast<sim::Time>(i) * 1000, (i * 37) % 500,
                   1 + i % 4, i % 3 == 0 ? OpType::Write : OpType::Read));
    }
    return t;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good());
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Drain @p src completely; fails the test on a source error. */
std::vector<TraceRecord>
drain(TraceSource &src)
{
    std::vector<TraceRecord> out;
    TraceRecord buf[7]; // odd size: exercises partial-chunk reads
    while (true) {
        const std::size_t n = src.next(buf, 7);
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    EXPECT_FALSE(src.failed()) << src.error().message();
    return out;
}

void
expectSameRecords(const std::vector<TraceRecord> &got, const Trace &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].arrival, want[i].arrival) << "record " << i;
        EXPECT_EQ(got[i].lbaSector, want[i].lbaSector) << "record " << i;
        EXPECT_EQ(got[i].sizeBytes, want[i].sizeBytes) << "record " << i;
        EXPECT_EQ(got[i].op, want[i].op) << "record " << i;
        EXPECT_EQ(got[i].serviceStart, want[i].serviceStart)
            << "record " << i;
        EXPECT_EQ(got[i].finish, want[i].finish) << "record " << i;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Varint coding (core/binio)

TEST(Varint, U64RoundTripBoundaries)
{
    const std::uint64_t cases[] = {
        0,      1,        127,     128,     16383,
        16384,  (1u << 21) - 1,    1u << 21, 0xFFFFFFFFull,
        std::uint64_t{1} << 63,    ~std::uint64_t{0}};
    core::BinWriter w;
    for (std::uint64_t v : cases)
        w.vu64(v);
    const std::string bytes = w.take();
    core::BinReader r(bytes);
    for (std::uint64_t v : cases)
        EXPECT_EQ(r.vu64(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Varint, I64ZigzagRoundTrip)
{
    const std::int64_t cases[] = {0,  -1, 1,  -2, 2,
                                  std::int64_t{1} << 40,
                                  -(std::int64_t{1} << 40),
                                  INT64_MAX, INT64_MIN};
    core::BinWriter w;
    for (std::int64_t v : cases)
        w.vi64(v);
    core::BinReader r(w.data());
    for (std::int64_t v : cases)
        EXPECT_EQ(r.vi64(), v);
    EXPECT_TRUE(r.ok());
}

TEST(Varint, SmallValuesEncodeSmall)
{
    core::BinWriter w;
    w.vu64(5);
    EXPECT_EQ(w.data().size(), 1u);
    w.vu64(300);
    EXPECT_EQ(w.data().size(), 3u);
}

TEST(Varint, OverlongEncodingRejected)
{
    // 11 continuation bytes cannot be a valid u64 varint; the reader
    // must fail instead of shifting bits into oblivion.
    std::string overlong(11, '\x80');
    overlong.push_back('\x01');
    core::BinReader r(overlong);
    r.vu64();
    EXPECT_FALSE(r.ok());
}

TEST(Varint, TruncatedEncodingRejected)
{
    core::BinReader r(std::string_view("\x80", 1));
    r.vu64();
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// emmctrace-bin v1 (trace/binfmt)

TEST(BinTrace, RoundTripWithoutTimestamps)
{
    const Trace t = sampleTrace(100);
    const std::string path = tempPath("bt_plain.bin");
    saveBinTraceFile(t, path);

    EXPECT_TRUE(BinTraceSource::isBinTraceFile(path));
    BinTraceSource src(path);
    ASSERT_FALSE(src.failed()) << src.error().message();
    EXPECT_EQ(src.name(), "Sample");
    EXPECT_EQ(src.info().records, 100u);
    EXPECT_FALSE(src.info().hasReplayTimes);
    expectSameRecords(drain(src), t);
}

TEST(BinTrace, RoundTripWithTimestamps)
{
    Trace t = sampleTrace(20);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t[i].serviceStart = t[i].arrival + 7;
        t[i].finish = t[i].arrival + 900 + static_cast<sim::Time>(i);
    }
    const std::string path = tempPath("bt_times.bin");
    saveBinTraceFile(t, path);

    BinTraceSource src(path);
    ASSERT_FALSE(src.failed());
    EXPECT_TRUE(src.info().hasReplayTimes);
    expectSameRecords(drain(src), t);
}

TEST(BinTrace, MultiBlockRoundTripAndReset)
{
    // > kBinTraceBlockRecords records forces the delta chains to span
    // block boundaries; reset() must replay identically.
    const Trace t = sampleTrace(kBinTraceBlockRecords + 123);
    const std::string path = tempPath("bt_blocks.bin");
    saveBinTraceFile(t, path);

    BinTraceSource src(path);
    expectSameRecords(drain(src), t);
    src.reset();
    ASSERT_FALSE(src.failed()) << src.error().message();
    expectSameRecords(drain(src), t);
}

TEST(BinTrace, EmptyTraceRoundTrip)
{
    Trace t("Empty");
    const std::string path = tempPath("bt_empty.bin");
    saveBinTraceFile(t, path);
    BinTraceSource src(path);
    ASSERT_FALSE(src.failed()) << src.error().message();
    TraceRecord r;
    EXPECT_EQ(src.next(&r, 1), 0u);
    EXPECT_FALSE(src.failed());
}

TEST(BinTrace, ReadInfoWithoutStreaming)
{
    const Trace t = sampleTrace(10);
    const std::string path = tempPath("bt_info.bin");
    saveBinTraceFile(t, path);
    BinTraceInfo info;
    TraceLoadError err;
    ASSERT_TRUE(BinTraceSource::readInfo(path, info, err))
        << err.message();
    EXPECT_EQ(info.name, "Sample");
    EXPECT_EQ(info.records, 10u);
    EXPECT_EQ(info.blockRecords, kBinTraceBlockRecords);
}

TEST(BinTrace, BadMagicRejected)
{
    const std::string path = tempPath("bt_notbin.bin");
    // Long enough for a full 48-byte header read: the failure must be
    // the magic check, not a short read.
    writeFile(path, std::string(64, 'x'));
    EXPECT_FALSE(BinTraceSource::isBinTraceFile(path));
    BinTraceSource src(path);
    EXPECT_TRUE(src.failed());
    EXPECT_NE(src.error().reason.find("magic"), std::string::npos);
}

TEST(BinTrace, TruncationDetected)
{
    const Trace t = sampleTrace(50);
    const std::string path = tempPath("bt_trunc.bin");
    saveBinTraceFile(t, path);
    std::string bytes = readFile(path);
    writeFile(tempPath("bt_trunc2.bin"),
              bytes.substr(0, bytes.size() - 10));

    BinTraceSource src(tempPath("bt_trunc2.bin"));
    std::vector<TraceRecord> buf(64);
    while (src.next(buf.data(), buf.size()) > 0) {
    }
    EXPECT_TRUE(src.failed());
}

TEST(BinTrace, BitRotFailsChecksum)
{
    const Trace t = sampleTrace(50);
    const std::string path = tempPath("bt_rot.bin");
    saveBinTraceFile(t, path);
    std::string bytes = readFile(path);
    // Flip one bit in the last block body, past the header.
    bytes[bytes.size() - 3] =
        static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
    writeFile(tempPath("bt_rot2.bin"), bytes);

    BinTraceSource src(tempPath("bt_rot2.bin"));
    std::vector<TraceRecord> buf(64);
    while (src.next(buf.data(), buf.size()) > 0) {
    }
    EXPECT_TRUE(src.failed());
}

// ---------------------------------------------------------------------------
// Streaming sources (trace/source)

TEST(MemorySource, StreamsAndResets)
{
    const Trace t = sampleTrace(10);
    MemoryTraceSource src(t);
    EXPECT_EQ(src.name(), "Sample");
    expectSameRecords(drain(src), t);
    src.reset();
    expectSameRecords(drain(src), t);
}

TEST(TextSource, MatchesTryLoad)
{
    const Trace t = sampleTrace(25);
    const std::string path = tempPath("ts_match.trace");
    t.saveFile(path);
    TextTraceSource src(path);
    ASSERT_FALSE(src.failed()) << src.error().message();
    EXPECT_EQ(src.name(), "Sample");
    expectSameRecords(drain(src), t);
    src.reset();
    expectSameRecords(drain(src), t);
}

TEST(TextSource, UnsortedArrivalsRejected)
{
    // Trace::tryLoad re-sorts; a streaming cursor cannot, so it must
    // reject instead of silently replaying out of order.
    const std::string path = tempPath("ts_unsorted.trace");
    writeFile(path, "500 0 4096 W\n100 8 4096 R\n");
    TextTraceSource src(path);
    TraceRecord buf[4];
    while (src.next(buf, 4) > 0) {
    }
    EXPECT_TRUE(src.failed());
    EXPECT_NE(src.error().reason.find("not sorted"), std::string::npos);
}

TEST(TextSource, RecordCountMismatchRejected)
{
    const std::string path = tempPath("ts_count.trace");
    writeFile(path, "# records: 5\n0 0 4096 R\n");
    TextTraceSource src(path);
    TraceRecord buf[4];
    while (src.next(buf, 4) > 0) {
    }
    EXPECT_TRUE(src.failed());
    EXPECT_NE(src.error().reason.find("record count mismatch"),
              std::string::npos);
}

TEST(TextSource, MissingFileFailsEarly)
{
    TextTraceSource src("/nonexistent/stream.trace");
    EXPECT_TRUE(src.failed());
    TraceRecord r;
    EXPECT_EQ(src.next(&r, 1), 0u);
}

// ---------------------------------------------------------------------------
// Timestamp parsing and line importers (trace/ingest)

TEST(IngestParse, SecondsToNsExact)
{
    sim::Time ns = 0;
    ASSERT_TRUE(ingest::parseSecondsToNs("0.000000001", ns));
    EXPECT_EQ(ns, 1);
    ASSERT_TRUE(ingest::parseSecondsToNs("1.5", ns));
    EXPECT_EQ(ns, 1'500'000'000);
    ASSERT_TRUE(ingest::parseSecondsToNs("123", ns));
    EXPECT_EQ(ns, 123'000'000'000);
    // Epoch-scale seconds with full ns precision: a double round-trip
    // would lose the low digits, the string split must not.
    ASSERT_TRUE(ingest::parseSecondsToNs("1538323200.123456789", ns));
    EXPECT_EQ(ns, 1538323200'123456789);
    // Sub-ns digits truncate.
    ASSERT_TRUE(ingest::parseSecondsToNs("0.0000000019", ns));
    EXPECT_EQ(ns, 1);
}

TEST(IngestParse, SecondsToNsRejectsMalformed)
{
    sim::Time ns = 0;
    EXPECT_FALSE(ingest::parseSecondsToNs("abc", ns));
    EXPECT_FALSE(ingest::parseSecondsToNs("1.", ns));
    EXPECT_FALSE(ingest::parseSecondsToNs("", ns));
    EXPECT_FALSE(ingest::parseSecondsToNs("-1.0", ns));
    EXPECT_FALSE(ingest::parseSecondsToNs("99999999999", ns));
}

TEST(IngestParse, BlktraceQueueEventParsed)
{
    ingest::RawRecord r;
    std::string err;
    const auto res = ingest::parseBlktraceLine(
        "  8,0    1  1  1.000000100  99  Q  WS 2048 + 8 [fio]", r, err);
    ASSERT_EQ(res, ingest::LineResult::Record) << err;
    EXPECT_EQ(r.timestampNs, 1'000'000'100);
    EXPECT_EQ(r.offsetBytes, 2048u * 512u);
    EXPECT_EQ(r.lengthBytes, 8u * 512u);
    EXPECT_TRUE(r.write);
    EXPECT_EQ(r.volume, "8,0");
}

TEST(IngestParse, BlktraceNonQueueSkipped)
{
    ingest::RawRecord r;
    std::string err;
    EXPECT_EQ(ingest::parseBlktraceLine(
                  "8,0 1 2 0.1 99 C WS 2048 + 8 [0]", r, err),
              ingest::LineResult::Skip);
    EXPECT_EQ(ingest::parseBlktraceLine("CPU0 (sda):", r, err),
              ingest::LineResult::Skip);
    EXPECT_EQ(ingest::parseBlktraceLine(
                  "8,0 1 3 0.2 99 Q N 0 + 0 [swapper]", r, err),
              ingest::LineResult::Skip)
        << "no R/W in rwbs means no data movement";
}

TEST(IngestParse, BlktraceMalformedQueueIsError)
{
    ingest::RawRecord r;
    std::string err;
    EXPECT_EQ(ingest::parseBlktraceLine(
                  "8,0 1 1 0.1 99 Q W 2048 bogus 8 [fio]", r, err),
              ingest::LineResult::Error);
    EXPECT_FALSE(err.empty());
}

TEST(IngestParse, BiosnoopLineParsed)
{
    ingest::RawRecord r;
    std::string err;
    ASSERT_EQ(ingest::parseBiosnoopLine(
                  "0.002000 fio 1234 sda R 4096 8192 0.21", r, err),
              ingest::LineResult::Record)
        << err;
    EXPECT_EQ(r.timestampNs, 2'000'000);
    EXPECT_EQ(r.offsetBytes, 4096u * 512u);
    EXPECT_EQ(r.lengthBytes, 8192u);
    EXPECT_FALSE(r.write);
    EXPECT_EQ(r.volume, "sda");
}

TEST(IngestParse, AlibabaLineParsed)
{
    ingest::RawRecord r;
    std::string err;
    ASSERT_EQ(ingest::parseAlibabaLine("3,W,1048576,4096,100000", r,
                                       err),
              ingest::LineResult::Record)
        << err;
    EXPECT_EQ(r.timestampNs, 100'000'000); // us -> ns
    EXPECT_EQ(r.offsetBytes, 1048576u);
    EXPECT_EQ(r.lengthBytes, 4096u);
    EXPECT_TRUE(r.write);
    EXPECT_EQ(r.volume, "3");
    EXPECT_EQ(ingest::parseAlibabaLine("3,X,0,4096,1", r, err),
              ingest::LineResult::Error);
}

TEST(IngestParse, TencentLineParsed)
{
    ingest::RawRecord r;
    std::string err;
    ASSERT_EQ(ingest::parseTencentLine("1538323200,2048,8,1,1283", r,
                                       err),
              ingest::LineResult::Record)
        << err;
    EXPECT_EQ(r.timestampNs, 1538323200'000'000'000);
    EXPECT_EQ(r.offsetBytes, 2048u * 512u);
    EXPECT_EQ(r.lengthBytes, 8u * 512u);
    EXPECT_TRUE(r.write);
    EXPECT_EQ(r.volume, "1283");
    EXPECT_EQ(ingest::parseTencentLine("1,0,8,2,v", r, err),
              ingest::LineResult::Error)
        << "iotype other than 0/1 is an error";
}

// ---------------------------------------------------------------------------
// Ingest pipeline (normalization)

TEST(Ingest, FormatNamesRoundTrip)
{
    for (const ingest::Format f :
         {ingest::Format::EmmcTrace, ingest::Format::Blktrace,
          ingest::Format::Biosnoop, ingest::Format::Alibaba,
          ingest::Format::Tencent}) {
        ingest::Format back;
        ASSERT_TRUE(ingest::formatFromName(ingest::formatName(f), back));
        EXPECT_EQ(back, f);
    }
    ingest::Format f;
    EXPECT_FALSE(ingest::formatFromName("csv", f));
}

TEST(Ingest, NormalizesAlignmentRebaseAndSort)
{
    // Misaligned extent (floor/ceil), out-of-order timestamps, and a
    // nonzero epoch: the pipeline aligns, sorts, and rebases to 0.
    const std::string path = tempPath("ing_norm.csv");
    writeFile(path,
              "device_id,opcode,offset,length,timestamp\n"
              "1,W,5000,4000,2000\n" // 5000..9000: crosses unit 1/2
              "1,R,8192,4096,1000\n" // aligned, earlier
              "1,W,0,0,3000\n");     // zero length: dropped

    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(ingest::Format::Alibaba, path, {},
                                   out, st, err))
        << err;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(st.parsed, 3u);
    EXPECT_EQ(st.kept, 2u);
    EXPECT_EQ(st.droppedZeroSize, 1u);
    EXPECT_EQ(st.aligned, 1u);
    // Sorted and rebased: the read at t=1000us becomes t=0.
    EXPECT_EQ(out[0].arrival, 0);
    EXPECT_FALSE(out[0].isWrite());
    EXPECT_EQ(out[1].arrival, 1'000'000); // 1000us later, in ns
    // 5000..9000 bytes covers units 1..2 -> offset 4096, length 8192.
    EXPECT_EQ(out[1].lbaSector.value(), sim::kSectorsPerUnit);
    EXPECT_EQ(out[1].sizeBytes.value(), 2 * sim::kUnitBytes);
    EXPECT_EQ(out.validate(), "");
}

TEST(Ingest, VolumeFilterAndCount)
{
    const std::string path = tempPath("ing_vol.csv");
    writeFile(path, "1,W,0,4096,100\n"
                    "2,W,4096,4096,200\n"
                    "1,R,8192,4096,300\n");
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ingest::IngestOptions opts;
    opts.volume = "1";
    ASSERT_TRUE(ingest::ingestFile(ingest::Format::Alibaba, path, opts,
                                   out, st, err))
        << err;
    EXPECT_EQ(st.kept, 2u);
    EXPECT_EQ(st.droppedVolume, 1u);
    EXPECT_EQ(st.volumesSeen, 2u);
}

TEST(Ingest, RemapFoldsAndDropsOversize)
{
    const std::string path = tempPath("ing_remap.csv");
    std::ostringstream in;
    // 100 units in a 16-unit device: must fold. 32-unit request: drop.
    in << "1,W," << 100 * sim::kUnitBytes << ",4096,100\n";
    in << "1,W,0," << 32 * sim::kUnitBytes << ",200\n";
    writeFile(path, in.str());

    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ingest::IngestOptions opts;
    opts.targetUnits = 16;
    ASSERT_TRUE(ingest::ingestFile(ingest::Format::Alibaba, path, opts,
                                   out, st, err))
        << err;
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(st.remapped, 1u);
    EXPECT_EQ(st.droppedOversize, 1u);
    // Same fold the replayer applies: 100 % (16 - 1 + 1) = 4.
    EXPECT_EQ(out[0].firstUnit().value(), 4);
}

TEST(Ingest, EmmcTracePassthroughStripsReplayTimes)
{
    Trace t = sampleTrace(5);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t[i].serviceStart = t[i].arrival + 5;
        t[i].finish = t[i].arrival + 50;
    }
    const std::string path = tempPath("ing_pass.trace");
    t.saveFile(path);

    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(ingest::Format::EmmcTrace, path, {},
                                   out, st, err))
        << err;
    EXPECT_EQ(out.name(), "Sample");
    ASSERT_EQ(out.size(), 5u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_FALSE(out[i].replayed());
        EXPECT_EQ(out[i].arrival, t[i].arrival);
        EXPECT_EQ(out[i].lbaSector, t[i].lbaSector);
    }
}

TEST(Ingest, ParseErrorCarriesLineNumber)
{
    const std::string path = tempPath("ing_badline.csv");
    writeFile(path, "1,W,0,4096,100\n1,W,zero,4096,200\n");
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    EXPECT_FALSE(ingest::ingestFile(ingest::Format::Alibaba, path, {},
                                    out, st, err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Importer goldens on the checked-in fixtures

TEST(IngestFixtures, Blktrace)
{
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(
        ingest::Format::Blktrace,
        std::string(EMMCSIM_TEST_DATA_DIR) + "/fixture_blktrace.txt", {},
        out, st, err))
        << err;
    // 4 queue events carry data (one on volume 8,16); C/G/D, the
    // zero-length Q N, and the blkparse summary tail are skipped.
    EXPECT_EQ(st.parsed, 4u);
    EXPECT_EQ(st.kept, 4u);
    EXPECT_EQ(st.volumesSeen, 2u);
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.writes, 3u);
    EXPECT_EQ(out.validate(), "");
    EXPECT_EQ(out[0].arrival, 0);

    ingest::IngestOptions only80;
    only80.volume = "8,0";
    ASSERT_TRUE(ingest::ingestFile(
        ingest::Format::Blktrace,
        std::string(EMMCSIM_TEST_DATA_DIR) + "/fixture_blktrace.txt",
        only80, out, st, err))
        << err;
    EXPECT_EQ(st.kept, 3u);
    EXPECT_EQ(st.droppedVolume, 1u);
}

TEST(IngestFixtures, Biosnoop)
{
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(
        ingest::Format::Biosnoop,
        std::string(EMMCSIM_TEST_DATA_DIR) + "/fixture_biosnoop.txt", {},
        out, st, err))
        << err;
    EXPECT_EQ(st.parsed, 4u);
    EXPECT_EQ(st.kept, 4u);
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.writes, 3u);
    EXPECT_EQ(st.volumesSeen, 2u);
    EXPECT_EQ(out.validate(), "");
}

TEST(IngestFixtures, Alibaba)
{
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(
        ingest::Format::Alibaba,
        std::string(EMMCSIM_TEST_DATA_DIR) + "/fixture_alibaba.csv", {},
        out, st, err))
        << err;
    EXPECT_EQ(st.parsed, 4u);
    EXPECT_EQ(st.kept, 4u);
    EXPECT_EQ(st.volumesSeen, 2u);
    EXPECT_EQ(st.spanNs, 2'000'000); // 100000us .. 102000us
    EXPECT_EQ(out.validate(), "");
}

TEST(IngestFixtures, Tencent)
{
    trace::Trace out;
    ingest::IngestStats st;
    std::string err;
    ASSERT_TRUE(ingest::ingestFile(
        ingest::Format::Tencent,
        std::string(EMMCSIM_TEST_DATA_DIR) + "/fixture_tencent.csv", {},
        out, st, err))
        << err;
    EXPECT_EQ(st.parsed, 4u);
    EXPECT_EQ(st.kept, 4u);
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.writes, 3u);
    EXPECT_EQ(st.spanNs, 1'000'000'000);
    EXPECT_EQ(out.validate(), "");
}
