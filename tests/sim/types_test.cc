/**
 * @file
 * Unit tests for the fundamental time and size helpers.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace emmcsim::sim;

TEST(Types, TimeConstructors)
{
    EXPECT_EQ(nanoseconds(7), 7);
    EXPECT_EQ(microseconds(3), 3000);
    EXPECT_EQ(milliseconds(2), 2'000'000);
    EXPECT_EQ(seconds(1), 1'000'000'000);
}

TEST(Types, TimeReaders)
{
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(160)), 160.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(5)), 5.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(40)), 40.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(microseconds(1500)), 1.5);
}

TEST(Types, RoundTripComposition)
{
    // Table V latencies survive unit round trips exactly.
    for (std::int64_t us : {160, 244, 1385, 1491, 3800})
        EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(us)),
                         static_cast<double>(us));
}

TEST(Types, ByteHelpers)
{
    EXPECT_EQ(kib(4), 4096u);
    EXPECT_EQ(mib(1), 1048576u);
    EXPECT_EQ(kKiB * 1024, kMiB);
    EXPECT_EQ(kMiB * 1024, kGiB);
}

TEST(Types, SectorAndUnitConstants)
{
    EXPECT_EQ(kSectorBytes, 512u);
    EXPECT_EQ(kUnitBytes, 4096u);
    EXPECT_EQ(kSectorsPerUnit, 8u);
}

TEST(Types, NeverSentinelIsNegative)
{
    EXPECT_LT(kTimeNever, 0);
}
