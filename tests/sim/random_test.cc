/**
 * @file
 * Unit and property tests for the RNG facade. Distribution properties
 * are checked statistically with generous tolerances and fixed seeds,
 * so they are deterministic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace emmcsim::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        auto x = r.uniformInt(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng r(4);
    EXPECT_EQ(r.uniformInt(9, 9), 9);
}

TEST(Rng, UniformRealInRange)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniformReal(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(6);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(7);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (r.chance(0.3))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(8);
    OnlineStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.exponential(4.0));
    EXPECT_NEAR(s.mean(), 4.0, 0.1);
    EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, LogUniformBoundsAndMean)
{
    Rng r(9);
    OnlineStats s;
    const double lo = 10.0;
    const double hi = 1000.0;
    for (int i = 0; i < 50000; ++i) {
        double x = r.logUniform(lo, hi);
        EXPECT_GE(x, lo);
        EXPECT_LE(x, hi);
        s.add(x);
    }
    // Analytic mean of log-uniform: (hi - lo) / ln(hi / lo).
    double expected = (hi - lo) / std::log(hi / lo);
    EXPECT_NEAR(s.mean(), expected, expected * 0.05);
}

TEST(Rng, LogUniformEachDecadeEquallyLikely)
{
    Rng r(10);
    int low_decade = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        if (r.logUniform(1.0, 100.0) <= 10.0)
            ++low_decade;
    }
    EXPECT_NEAR(static_cast<double>(low_decade) / n, 0.5, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng r(11);
    std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(w.size(), 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[r.weightedIndex(w)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, WeightedIndexSingleEntry)
{
    Rng r(12);
    std::vector<double> w = {2.5};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.weightedIndex(w), 0u);
}
