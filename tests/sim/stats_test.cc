/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

using namespace emmcsim::sim;

TEST(OnlineStats, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombined)
{
    OnlineStats a;
    OnlineStats b;
    OnlineStats all;
    for (int i = 0; i < 10; ++i) {
        a.add(i);
        all.add(i);
    }
    for (int i = 10; i < 30; ++i) {
        b.add(i * 0.5);
        all.add(i * 0.5);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a;
    a.add(1.0);
    OnlineStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketAssignmentInclusiveUpperBound)
{
    Histogram h({4.0, 8.0, 16.0});
    h.add(4.0);  // bucket 0 (<= 4)
    h.add(4.1);  // bucket 1
    h.add(8.0);  // bucket 1 (<= 8)
    h.add(16.0); // bucket 2
    h.add(16.5); // overflow bucket 3
    EXPECT_EQ(h.bucketCountAt(0), 1u);
    EXPECT_EQ(h.bucketCountAt(1), 2u);
    EXPECT_EQ(h.bucketCountAt(2), 1u);
    EXPECT_EQ(h.bucketCountAt(3), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h({1.0, 2.0, 3.0});
    for (double x : {0.5, 1.5, 2.5, 3.5, 0.1, 2.9})
        h.add(x);
    double sum = 0.0;
    for (double f : h.fractions())
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyHistogramFractionsZero)
{
    Histogram h({1.0});
    EXPECT_DOUBLE_EQ(h.fractionAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.0);
}

TEST(Histogram, AddNWeightsSamples)
{
    Histogram h({10.0});
    h.addN(5.0, 7);
    EXPECT_EQ(h.bucketCountAt(0), 7u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, OverflowBoundIsInfinite)
{
    Histogram h({1.0, 2.0});
    EXPECT_DOUBLE_EQ(h.upperBoundAt(0), 1.0);
    EXPECT_DOUBLE_EQ(h.upperBoundAt(1), 2.0);
    EXPECT_TRUE(std::isinf(h.upperBoundAt(2)));
}

TEST(Histogram, ResetZeroes)
{
    Histogram h({1.0});
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCountAt(0), 0u);
}

TEST(Histogram, NoBoundsMeansSingleBucket)
{
    Histogram h({});
    h.add(-5.0);
    h.add(1e12);
    EXPECT_EQ(h.bucketCount(), 1u);
    EXPECT_EQ(h.bucketCountAt(0), 2u);
}

TEST(Percentiles, EmptyReturnsZero)
{
    Percentiles p;
    EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
}

TEST(Percentiles, NearestRank)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(p.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
}

TEST(Percentiles, UnsortedInput)
{
    Percentiles p;
    for (double x : {5.0, 1.0, 4.0, 2.0, 3.0})
        p.add(x);
    EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(20), 1.0);
}

TEST(Percentiles, AddAfterQueryStillWorks)
{
    Percentiles p;
    p.add(1.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 1.0);
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 10.0);
}

TEST(FormatDouble, FixedDecimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(Percentiles, MergeCombinesSamples)
{
    Percentiles a;
    Percentiles b;
    for (int i = 1; i <= 50; ++i)
        a.add(i);
    for (int i = 51; i <= 100; ++i)
        b.add(i);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 100.0);
    // The source is untouched.
    EXPECT_DOUBLE_EQ(b.percentile(0), 51.0);
}

TEST(Percentiles, MergeEmptyIsNoop)
{
    Percentiles a;
    a.add(7.0);
    Percentiles empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.percentile(100), 7.0);
}

TEST(Percentiles, SelfMergeDoublesSamples)
{
    Percentiles a;
    a.add(1.0);
    a.add(2.0);
    a.merge(a);
    EXPECT_DOUBLE_EQ(a.percentile(100), 2.0);
    // 4 samples now: nearest-rank p50 is the 2nd.
    EXPECT_DOUBLE_EQ(a.percentile(50), 1.0);
}

TEST(HistogramPercentile, EmptyIsZero)
{
    Histogram h({1.0, 2.0});
    EXPECT_DOUBLE_EQ(h.percentileEstimate(50), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(HistogramPercentile, InterpolatesWithinBucket)
{
    // 100 samples all in the (1, 2] bucket: every quantile lands
    // inside it, linearly interpolated between the bucket bounds.
    Histogram h({1.0, 2.0, 4.0});
    h.addN(1.5, 100);
    const double p50 = h.percentileEstimate(50);
    EXPECT_GT(p50, 1.0);
    EXPECT_LE(p50, 2.0);
    EXPECT_LT(h.percentileEstimate(1), p50);
    EXPECT_LE(h.percentileEstimate(100), 2.0);
}

TEST(HistogramPercentile, SpreadSamplesOrdered)
{
    Histogram h({1.0, 2.0, 4.0, 8.0});
    h.addN(0.5, 50);
    h.addN(1.5, 30);
    h.addN(3.0, 15);
    h.addN(6.0, 5);
    const double p50 = h.percentileEstimate(50);
    const double p95 = h.percentileEstimate(95);
    const double p99 = h.percentileEstimate(99);
    EXPECT_LE(p50, 1.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, 8.0);
}

TEST(HistogramPercentile, OverflowBucketClampsToLastBound)
{
    Histogram h({1.0, 2.0});
    h.addN(100.0, 10);
    EXPECT_DOUBLE_EQ(h.percentileEstimate(99), 2.0);
}

TEST(HistogramPercentile, ZeroPercentileIsLowerEdge)
{
    // p=0 mirrors Percentiles::percentile(0) = min: the lower edge of
    // the first occupied bucket, not an interpolated interior point.
    Histogram h({1.0, 2.0, 4.0});
    h.addN(1.5, 10);
    EXPECT_DOUBLE_EQ(h.percentileEstimate(0), 1.0);
    Histogram first({1.0, 2.0});
    first.addN(0.5, 3);
    EXPECT_DOUBLE_EQ(first.percentileEstimate(0), 0.0);
}

TEST(HistogramPercentile, SingleSampleEveryPercentile)
{
    Histogram h({1.0, 2.0, 4.0});
    h.add(3.0); // bucket (2, 4]
    EXPECT_DOUBLE_EQ(h.percentileEstimate(0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentileEstimate(50), 4.0);
    EXPECT_DOUBLE_EQ(h.percentileEstimate(100), 4.0);
}

TEST(HistogramPercentile, EmptyIsZeroForAllP)
{
    Histogram h({1.0, 2.0});
    EXPECT_DOUBLE_EQ(h.percentileEstimate(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentileEstimate(100), 0.0);
    Histogram catchall({});
    EXPECT_DOUBLE_EQ(catchall.percentileEstimate(50), 0.0);
}

TEST(Percentiles, SingleSampleEveryPercentile)
{
    Percentiles p;
    p.add(3.5);
    EXPECT_DOUBLE_EQ(p.percentile(0), 3.5);
    EXPECT_DOUBLE_EQ(p.percentile(50), 3.5);
    EXPECT_DOUBLE_EQ(p.percentile(100), 3.5);
}

TEST(Percentiles, EmptyReturnsZeroAtExtremes)
{
    Percentiles p;
    EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 0.0);
}

// The sweep aggregates per-worker accumulators in whatever grouping
// the collection loop produces, so merge must be associative with
// empty operands acting as identities.

TEST(OnlineStats, MergeEmptyBothSidesIsIdentity)
{
    OnlineStats a;
    for (double x : {2.0, 4.0, 9.0})
        a.add(x);
    const OnlineStats before = a;
    OnlineStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), before.count());
    EXPECT_DOUBLE_EQ(a.mean(), before.mean());
    EXPECT_DOUBLE_EQ(a.variance(), before.variance());
    EXPECT_DOUBLE_EQ(a.min(), before.min());
    EXPECT_DOUBLE_EQ(a.max(), before.max());
    EXPECT_DOUBLE_EQ(a.sum(), before.sum());

    OnlineStats lhs;
    lhs.merge(a);
    EXPECT_EQ(lhs.count(), a.count());
    EXPECT_DOUBLE_EQ(lhs.mean(), a.mean());
    EXPECT_DOUBLE_EQ(lhs.variance(), a.variance());
}

TEST(OnlineStats, MergeIsAssociative)
{
    auto fill = [](OnlineStats &s, int lo, int hi, double scale) {
        for (int i = lo; i < hi; ++i)
            s.add(i * scale);
    };
    OnlineStats a1, b1, c1, a2, b2, c2;
    fill(a1, 0, 13, 1.0);
    fill(a2, 0, 13, 1.0);
    fill(b1, 13, 40, 0.25);
    fill(b2, 13, 40, 0.25);
    fill(c1, 40, 55, -2.0);
    fill(c2, 40, 55, -2.0);

    // (a + b) + c
    a1.merge(b1);
    a1.merge(c1);
    // a + (b + c)
    b2.merge(c2);
    a2.merge(b2);

    EXPECT_EQ(a1.count(), a2.count());
    EXPECT_DOUBLE_EQ(a1.min(), a2.min());
    EXPECT_DOUBLE_EQ(a1.max(), a2.max());
    EXPECT_NEAR(a1.mean(), a2.mean(), 1e-12);
    EXPECT_NEAR(a1.variance(), a2.variance(), 1e-9);
    EXPECT_NEAR(a1.sum(), a2.sum(), 1e-9);
}

TEST(Percentiles, MergeIsAssociativeAndOrderFree)
{
    auto fill = [](Percentiles &p, int lo, int hi) {
        for (int i = lo; i < hi; ++i)
            p.add(i);
    };
    Percentiles a1, b1, c1, a2, b2, c2;
    fill(a1, 0, 10);
    fill(a2, 0, 10);
    fill(b1, 10, 35);
    fill(b2, 10, 35);
    fill(c1, 35, 60);
    fill(c2, 35, 60);

    a1.merge(b1);
    a1.merge(c1);
    b2.merge(c2);
    a2.merge(b2);

    ASSERT_EQ(a1.count(), a2.count());
    for (double p : {0.0, 25.0, 50.0, 75.0, 100.0})
        EXPECT_DOUBLE_EQ(a1.percentile(p), a2.percentile(p));
}

TEST(Percentiles, MergeIntoEmptyIsIdentity)
{
    Percentiles src;
    for (double x : {3.0, 1.0, 2.0})
        src.add(x);
    Percentiles dst;
    dst.merge(src);
    EXPECT_EQ(dst.count(), src.count());
    EXPECT_DOUBLE_EQ(dst.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(dst.percentile(100), 3.0);
}
