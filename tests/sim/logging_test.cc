/**
 * @file
 * Tests for the component-scoped logging configuration: EMMCSIM_LOG
 * spec parsing, per-component thresholds, and the suppression rules
 * (fatal/panic never filtered, malformed entries skipped not fatal).
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace emmcsim::sim {
namespace {

TEST(LogConfigTest, DefaultThresholdIsInfo)
{
    LogConfig cfg;
    EXPECT_EQ(cfg.defaultLevel(), LogLevel::Info);
    EXPECT_FALSE(cfg.enabled("anything", LogLevel::Debug));
    EXPECT_TRUE(cfg.enabled("anything", LogLevel::Info));
    EXPECT_TRUE(cfg.enabled("anything", LogLevel::Warn));
}

TEST(LogConfigTest, BareLevelSetsDefault)
{
    LogConfig cfg = LogConfig::parse("debug");
    EXPECT_EQ(cfg.defaultLevel(), LogLevel::Debug);
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Debug));

    cfg = LogConfig::parse("warn");
    EXPECT_FALSE(cfg.enabled("gc", LogLevel::Info));
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Warn));
}

TEST(LogConfigTest, PerComponentEntriesOverrideDefault)
{
    LogConfig cfg = LogConfig::parse("warn,gc=debug,replay=info");
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Debug));
    EXPECT_TRUE(cfg.enabled("replay", LogLevel::Info));
    EXPECT_FALSE(cfg.enabled("replay", LogLevel::Debug));
    // Unlisted components fall back to the default threshold.
    EXPECT_FALSE(cfg.enabled("bbm", LogLevel::Info));
    EXPECT_TRUE(cfg.enabled("bbm", LogLevel::Warn));
}

TEST(LogConfigTest, LaterEntriesWin)
{
    LogConfig cfg = LogConfig::parse("gc=debug,gc=warn");
    EXPECT_FALSE(cfg.enabled("gc", LogLevel::Debug));
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Warn));
}

TEST(LogConfigTest, FatalAndPanicNeverSuppressed)
{
    LogConfig cfg = LogConfig::parse("warn");
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Fatal));
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Panic));
}

TEST(LogConfigTest, MalformedEntriesAreSkippedNotFatal)
{
    std::string error;
    LogConfig cfg = LogConfig::parse("bogus,gc=debug", &error);
    EXPECT_FALSE(error.empty());
    // The valid entry still applies.
    EXPECT_TRUE(cfg.enabled("gc", LogLevel::Debug));

    error.clear();
    cfg = LogConfig::parse("gc=notalevel", &error);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(cfg.levelFor("gc"), cfg.defaultLevel());

    // Well-formed specs report no error.
    error.clear();
    LogConfig::parse("debug,gc=info", &error);
    EXPECT_TRUE(error.empty());
}

TEST(LogConfigTest, EmptySpecIsDefault)
{
    std::string error;
    LogConfig cfg = LogConfig::parse("", &error);
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(cfg.defaultLevel(), LogLevel::Info);
}

TEST(LogConfigTest, ProcessConfigCanBeReplaced)
{
    const LogConfig saved = logConfig();
    setLogConfig(LogConfig::parse("gc=debug"));
    EXPECT_TRUE(logEnabled("gc", LogLevel::Debug));
    EXPECT_FALSE(logEnabled("other", LogLevel::Debug));
    setLogConfig(saved);
}

TEST(LogConfigTest, ConcurrentLogAndReconfigureIsSafe)
{
    // Sweep workers log while the collector may swap the process
    // config; under TSan this pins the shared_mutex + single-write
    // discipline in sim/logging.cc.
    const LogConfig saved = logConfig();
    std::vector<std::thread> threads;
    threads.reserve(5);
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([w] {
            for (int i = 0; i < 200; ++i) {
                // Neither component ever reaches debug verbosity in
                // this test, so nothing is emitted — the point is the
                // concurrent enabled/config reads.
                debug("sweeptest", "worker message");
                EMMCSIM_LOG_DEBUG("quiet-component",
                                  "suppressed by threshold");
                (void)logConfig().enabled("gc", LogLevel::Info);
                (void)w;
            }
        });
    }
    threads.emplace_back([] {
        for (int i = 0; i < 100; ++i)
            setLogConfig(LogConfig::parse(
                i % 2 == 0 ? "warn" : "info,sweeptest=warn"));
    });
    for (std::thread &t : threads)
        t.join();
    setLogConfig(saved);
    SUCCEED();
}

} // namespace
} // namespace emmcsim::sim
