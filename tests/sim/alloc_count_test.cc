/**
 * @file
 * Proof that the steady-state event path performs zero heap
 * allocations: global operator new is replaced with a counting
 * implementation, and a warmed-up schedule/pop cycle must not bump
 * the counter. Kept in its own test binary because the replacement
 * operators apply to every translation unit they are linked into.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event.hh"
#include "sim/simulator.hh"

namespace {

std::atomic<std::uint64_t> g_heapAllocs{0};

} // namespace

// Counting replacements for the throwing, unaligned forms (the only
// ones the event core could reach; over-aligned types keep the
// default operators, which never mix with these).
void *
operator new(std::size_t n)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace emmcsim::sim;

TEST(EventCoreAllocation, SteadyStateScheduleRunIsHeapFree)
{
    constexpr int kBatch = 1024;
    EventQueue q;
    std::uint64_t sink = 0;
    Time base = 0;

    auto fillDrain = [&] {
        for (int i = 0; i < kBatch; ++i)
            q.schedule(base + i, [&sink] { ++sink; });
        Time t;
        EventAction a;
        while (q.pop(t, a))
            a();
        base += kBatch;
    };

    // Warm-up: grow the arena, freelist, and heap vector to capacity.
    fillDrain();
    fillDrain();
    ASSERT_EQ(q.arenaSlots(), static_cast<std::size_t>(kBatch));

    const std::uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    fillDrain();
    const std::uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "steady-state schedule/pop allocated on the heap";
    EXPECT_EQ(sink, static_cast<std::uint64_t>(3 * kBatch));
}

TEST(EventCoreAllocation, SteadyStateCancelIsHeapFree)
{
    constexpr int kBatch = 512;
    EventQueue q;
    Time base = 0;
    std::vector<EventId> ids(static_cast<std::size_t>(kBatch));

    auto churn = [&] {
        for (int i = 0; i < kBatch; ++i)
            ids[static_cast<std::size_t>(i)] =
                q.schedule(base + i, [] {});
        for (int i = 0; i < kBatch; i += 2)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        Time t;
        EventAction a;
        while (q.pop(t, a))
            a();
        base += kBatch;
    };

    churn();
    churn();
    const std::uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    churn();
    const std::uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state cancel/compact path allocated on the heap";
}

TEST(EventCoreAllocation, TunedWheelBatchDispatchIsHeapFree)
{
    // Clustered-latency shape: events land in ties of 8 on four fixed
    // NAND latencies, exercising bucket filing, run staging, batched
    // dispatch, epoch re-anchoring and heap promotion.
    //
    // Bucket vectors grow lazily and their capacities rotate through
    // the staging swap, so steady state begins once every reachable
    // bucket has been loaded at least as heavily as the measured
    // round will load it. The warm-up therefore floods the whole
    // wheel span with same-tick groups before the counted round.
    constexpr int kBatch = 1024;
    constexpr Time kLat[4] = {160'000, 244'000, 1'385'000, 3'800'000};
    EventQueue q;
    q.tuneWheel(kLat[0], kLat[3]);
    ASSERT_TRUE(q.wheelTuned());
    std::uint64_t sink = 0;

    auto drain = [&] {
        while (q.dispatchTick([](Time) {}, [](Time) {}) > 0) {
        }
    };

    // Flood: ~400 events in every bucket of the wheel span, in ties
    // of 16, so every bucket / run / batch vector reaches a capacity
    // no clustered round will exceed.
    const Time width = q.wheelBucketWidth();
    const std::size_t nBuckets = q.wheelBucketCount();
    for (int pass = 0; pass < 2; ++pass) {
        const Time base = q.lastPopTime();
        for (std::size_t b = 0; b < nBuckets; ++b) {
            for (int g = 0; g < 25; ++g) {
                const Time when = base + static_cast<Time>(b) * width +
                                  g * (width / 25);
                for (int i = 0; i < 16; ++i)
                    q.schedule(when, [&sink] { ++sink; });
            }
        }
        drain();
    }

    auto round = [&] {
        const Time base = q.lastPopTime();
        for (int i = 0; i < kBatch; ++i)
            q.schedule(base + kLat[(i / 8) & 3] +
                           static_cast<Time>(i / 8) * 257,
                       [&sink] { ++sink; });
        drain();
    };

    round();
    round();
    const std::uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    round();
    const std::uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "tuned-wheel batched dispatch allocated on the heap";
    EXPECT_GT(q.dispatchBatches(), 0u);
    EXPECT_GT(q.wheelScheduled(), 0u);
}

TEST(EventCoreAllocation, SimulatorLoopIsHeapFreeAfterWarmup)
{
    constexpr int kBatch = 256;
    Simulator s;
    std::uint64_t sink = 0;
    Time base = 0;

    auto round = [&] {
        for (int i = 0; i < kBatch; ++i)
            s.schedule(base + i, [&sink] { ++sink; });
        s.run();
        base += kBatch;
    };

    round();
    round();
    const std::uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    round();
    const std::uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "simulator event loop allocated on the heap";
}

} // namespace
