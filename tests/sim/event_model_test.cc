/**
 * @file
 * Randomized differential test of the two-tier event queue.
 *
 * A std::multimap keyed on (when, band) — which preserves insertion
 * order for equal keys, i.e. exactly the FIFO-within-band contract —
 * serves as the executable specification. Every random operation
 * (schedule, front-band schedule, cancel, stale cancel, pop burst)
 * is applied simultaneously to the model, to an untuned EventQueue
 * (pure heap + drain-sort), and to a tuned EventQueue (calendar wheel
 * over overflow heap). All three must pop the identical sequence.
 *
 * The offset distribution deliberately straddles the wheel horizon so
 * in-bucket filing, overflow scheduling, epoch re-anchoring and heap
 * promotion all run; a Simulator-level variant reschedules from
 * inside handlers (including zero-delay, i.e. mid-batch same-tick
 * schedules) to drive the batched dispatch path the same way device
 * completions do.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"

namespace {

using namespace emmcsim::sim;

/** Tuned-wheel parameters used throughout: the repo's fixed 4KB-read
 *  and erase latencies, so the wheel shape matches a real device. */
constexpr Time kShortest = 160'000;
constexpr Time kLongest = 3'800'000;

using ModelKey = std::pair<Time, int>; ///< (when, band): front=0
using ModelMap = std::multimap<ModelKey, int>;

struct LiveEvent
{
    EventId heapId;  ///< id in the untuned queue
    EventId wheelId; ///< id in the tuned queue
    ModelMap::iterator modelIt;
};

class QueueModelFuzz : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(QueueModelFuzz, PopOrderMatchesMultimapReference)
{
    std::mt19937 rng(GetParam());
    EventQueue heapQ;
    EventQueue wheelQ;
    wheelQ.tuneWheel(kShortest, kLongest);
    ASSERT_TRUE(wheelQ.wheelTuned());
    ASSERT_FALSE(heapQ.wheelTuned());

    ModelMap model;
    std::map<int, LiveEvent> live;
    std::vector<std::pair<EventId, EventId>> deadIds;
    std::vector<int> heapFired;
    std::vector<int> wheelFired;
    int nextToken = 0;
    Time now = 0;

    // Offsets from "now": same-tick, in-wheel, and far past the
    // wheel horizon (4 * kLongest) so the overflow tier and epoch
    // re-anchor logic both see traffic.
    std::uniform_int_distribution<Time> nearOff(0, kShortest);
    std::uniform_int_distribution<Time> wheelOff(0, 4 * kLongest);
    std::uniform_int_distribution<Time> farOff(4 * kLongest,
                                               20 * kLongest);

    auto draw = [&](int pct) {
        return std::uniform_int_distribution<int>(0, 99)(rng) < pct;
    };

    auto scheduleOne = [&](bool front) {
        Time off;
        if (draw(20))
            off = nearOff(rng);
        else if (draw(80))
            off = wheelOff(rng);
        else
            off = farOff(rng);
        const Time when = now + off;
        const int token = nextToken++;
        LiveEvent ev;
        if (front) {
            ev.heapId = heapQ.scheduleFront(
                when, [&heapFired, token] { heapFired.push_back(token); });
            ev.wheelId = wheelQ.scheduleFront(when, [&wheelFired, token] {
                wheelFired.push_back(token);
            });
        } else {
            ev.heapId = heapQ.schedule(
                when, [&heapFired, token] { heapFired.push_back(token); });
            ev.wheelId = wheelQ.schedule(when, [&wheelFired, token] {
                wheelFired.push_back(token);
            });
        }
        ev.modelIt = model.emplace(ModelKey{when, front ? 0 : 1}, token);
        live.emplace(token, ev);
    };

    auto popOne = [&]() -> bool {
        Time tHeap = 0;
        Time tWheel = 0;
        EventAction aHeap;
        EventAction aWheel;
        const bool gotHeap = heapQ.pop(tHeap, aHeap);
        const bool gotWheel = wheelQ.pop(tWheel, aWheel);
        EXPECT_EQ(gotHeap, gotWheel);
        EXPECT_EQ(gotHeap, !model.empty());
        if (!gotHeap || !gotWheel)
            return false;
        EXPECT_EQ(tHeap, tWheel);
        aHeap();
        aWheel();
        EXPECT_FALSE(heapFired.empty());
        EXPECT_FALSE(model.empty());
        if (heapFired.empty() || model.empty())
            return false;
        const int token = heapFired.back();
        EXPECT_EQ(wheelFired.back(), token);
        EXPECT_EQ(model.begin()->second, token)
            << "pop order diverged from the multimap reference";
        EXPECT_EQ(model.begin()->first.first, tHeap);
        model.erase(model.begin());
        auto liveIt = live.find(token);
        EXPECT_NE(liveIt, live.end());
        if (liveIt != live.end()) {
            deadIds.emplace_back(liveIt->second.heapId,
                                 liveIt->second.wheelId);
            live.erase(liveIt);
        }
        now = tHeap;
        return true;
    };

    constexpr int kOps = 20'000;
    for (int op = 0; op < kOps; ++op) {
        const int r = std::uniform_int_distribution<int>(0, 99)(rng);
        if (r < 45) {
            scheduleOne(/*front=*/false);
        } else if (r < 55) {
            scheduleOne(/*front=*/true);
        } else if (r < 65 && !live.empty()) {
            // Cancel a random live event everywhere.
            auto it = live.begin();
            std::advance(it,
                         std::uniform_int_distribution<std::size_t>(
                             0, live.size() - 1)(rng));
            EXPECT_TRUE(heapQ.cancel(it->second.heapId));
            EXPECT_TRUE(wheelQ.cancel(it->second.wheelId));
            model.erase(it->second.modelIt);
            deadIds.emplace_back(it->second.heapId,
                                 it->second.wheelId);
            live.erase(it);
        } else if (r < 70 && !deadIds.empty()) {
            // Stale cancel: fired or already-canceled ids must be
            // rejected by the generation check in both queues, even
            // after the slot has been recycled for a new event.
            const auto &dead =
                deadIds[std::uniform_int_distribution<std::size_t>(
                    0, deadIds.size() - 1)(rng)];
            EXPECT_FALSE(heapQ.cancel(dead.first));
            EXPECT_FALSE(wheelQ.cancel(dead.second));
        } else {
            const int burst =
                std::uniform_int_distribution<int>(1, 16)(rng);
            for (int i = 0; i < burst; ++i) {
                if (!popOne())
                    break;
            }
        }
        ASSERT_EQ(heapQ.size(), model.size());
        ASSERT_EQ(wheelQ.size(), model.size());
    }

    // Drain everything; the full histories must be identical.
    while (popOne()) {
    }
    EXPECT_TRUE(model.empty());
    EXPECT_TRUE(heapQ.empty());
    EXPECT_TRUE(wheelQ.empty());
    EXPECT_EQ(heapFired, wheelFired);
}

TEST_P(QueueModelFuzz, StaleCancelIsRejectedAfterFire)
{
    std::mt19937 rng(GetParam() ^ 0x5eedu);
    EventQueue q;
    q.tuneWheel(kShortest, kLongest);

    std::vector<EventId> ids;
    std::uniform_int_distribution<Time> off(0, 6 * kLongest);
    for (int round = 0; round < 50; ++round) {
        ids.clear();
        const Time base = q.lastPopTime();
        for (int i = 0; i < 64; ++i)
            ids.push_back(q.schedule(base + off(rng), [] {}));
        Time t;
        EventAction a;
        while (q.pop(t, a))
            a();
        // Every id fired; slots were recycled. The generation tag
        // must reject all of them even if the slot is live again.
        for (int i = 0; i < 32; ++i)
            q.schedule(q.lastPopTime() + off(rng), [] {});
        for (const EventId &id : ids)
            EXPECT_FALSE(q.cancel(id));
        while (q.pop(t, a))
            a();
    }
}

/**
 * Simulator-level determinism: the same handler-driven workload on a
 * tuned and an untuned simulator must execute tokens in the same
 * order. Handlers reschedule with zero delay sometimes, which lands
 * mid-batch at the current tick — the hardest interleaving case for
 * batched dispatch.
 */
TEST_P(QueueModelFuzz, TunedAndUntunedSimulatorsExecuteIdentically)
{
    auto runOne = [&](bool tuned) {
        Simulator s;
        if (tuned)
            s.tuneEventHorizon(kShortest, kLongest);
        std::vector<int> order;
        std::mt19937 rng(GetParam() * 2654435761u + 1);
        std::uniform_int_distribution<Time> off(0, 5 * kLongest);
        constexpr Time kLatencies[4] = {160'000, 244'000, 1'385'000,
                                        3'800'000};
        int budget = 30'000;
        int token = 0;

        // Self-sustaining load: each handler reschedules one or two
        // follow-ups while the budget lasts; ties are common because
        // delays come from four fixed latencies.
        std::function<void(int)> fire = [&](int id) {
            order.push_back(id);
            if (budget <= 0)
                return;
            const int kids =
                std::uniform_int_distribution<int>(1, 2)(rng);
            for (int k = 0; k < kids && budget > 0; ++k) {
                --budget;
                const int kid = ++token;
                Time d;
                const int pick =
                    std::uniform_int_distribution<int>(0, 9)(rng);
                if (pick == 0)
                    d = 0; // same tick, scheduled mid-batch
                else if (pick <= 7)
                    d = kLatencies[static_cast<std::size_t>(pick) % 4];
                else
                    d = off(rng);
                s.schedule(s.now() + d,
                           [&fire, kid] { fire(kid); });
            }
        };
        for (int i = 0; i < 32; ++i) {
            --budget;
            const int id = ++token;
            s.schedule(off(rng), [&fire, id] { fire(id); });
        }
        s.run();
        return order;
    };

    const std::vector<int> heapOrder = runOne(false);
    const std::vector<int> wheelOrder = runOne(true);
    EXPECT_EQ(heapOrder.size(), 30'000u);
    EXPECT_EQ(heapOrder, wheelOrder);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueModelFuzz,
                         ::testing::Values(1u, 42u, 20260807u));

} // namespace
