/**
 * @file
 * Unit tests for the event queue and simulator loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"

using namespace emmcsim::sim;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueue, PopReturnsFalseWhenEmpty)
{
    EventQueue q;
    Time t;
    EventAction a;
    EXPECT_FALSE(q.pop(t, a));
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextTime(), 40);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    Time t;
    EventAction a;
    EXPECT_FALSE(q.pop(t, a));
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));          // never issued
    EXPECT_FALSE(q.cancel(EventId{1234, 0}));   // out-of-range slot
}

TEST(EventQueue, CancelStaleHandleAfterSlotReuseFails)
{
    // The ABA case: a handle outlives its event, the slot is recycled
    // for a new event, and the stale cancel must not kill the new one.
    EventQueue q;
    bool firstFired = false;
    bool secondFired = false;
    EventId a = q.schedule(10, [&] { firstFired = true; });
    ASSERT_TRUE(q.cancel(a));
    EventId b = q.schedule(20, [&] { secondFired = true; });
    ASSERT_EQ(b.slot, a.slot); // the slot really was recycled
    EXPECT_NE(b.gen, a.gen);   // ... under a newer generation
    EXPECT_FALSE(q.cancel(a)); // stale handle bounces off
    EXPECT_EQ(q.size(), 1u);   // live event unaffected

    Time t;
    EventAction act;
    ASSERT_TRUE(q.pop(t, act));
    act();
    EXPECT_TRUE(secondFired);
    EXPECT_FALSE(firstFired);
    EXPECT_FALSE(q.pop(t, act));
}

TEST(EventQueue, FiredHandleCannotBeCancelled)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    Time t;
    EventAction a;
    ASSERT_TRUE(q.pop(t, a));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, ArenaRecyclesSlotsAndTracksHighWater)
{
    // Schedule/pop 1000 events one at a time: the arena must stay at
    // one slot (peak live = 1), not grow with lifetime events.
    EventQueue q;
    Time t;
    EventAction a;
    for (int i = 0; i < 1000; ++i) {
        q.schedule(i, [] {});
        ASSERT_TRUE(q.pop(t, a));
    }
    EXPECT_EQ(q.arenaSlots(), 1u);
    EXPECT_EQ(q.arenaHighWater(), 1u);
    EXPECT_EQ(q.freeSlots(), 1u);
    EXPECT_EQ(q.scheduledCount(), 1000u);

    // Ten simultaneously live events push the high-water mark to 10;
    // draining returns every slot to the freelist.
    for (int i = 0; i < 10; ++i)
        q.schedule(2000 + i, [] {});
    EXPECT_EQ(q.arenaSlots(), 10u);
    EXPECT_EQ(q.arenaHighWater(), 10u);
    while (q.pop(t, a)) {
    }
    EXPECT_EQ(q.freeSlots(), 10u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelStormTriggersHeapCompaction)
{
    // Cancel 3/4 of a large batch: dead heap entries cross the n/2
    // threshold and the heap compacts instead of carrying the corpses
    // to the pop path.
    EventQueue q;
    std::vector<EventId> ids;
    ids.reserve(256);
    int fired = 0;
    for (int i = 0; i < 256; ++i)
        ids.push_back(q.schedule(i, [&] { ++fired; }));
    for (int i = 0; i < 256; ++i) {
        if (i % 4 != 0) {
            ASSERT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
        }
    }
    EXPECT_GT(q.heapCompactions(), 0u);
    EXPECT_LE(q.deadHeapEntries(), 128u); // bounded by the trigger
    EXPECT_EQ(q.size(), 64u);

    std::vector<std::string> violations;
    q.auditInvariants(violations);
    EXPECT_TRUE(violations.empty()) << violations.front();

    Time t;
    EventAction a;
    Time last = -1;
    while (q.pop(t, a)) {
        EXPECT_GE(t, last);
        last = t;
        a();
    }
    EXPECT_EQ(fired, 64);
}

TEST(EventQueue, SameTickFifoSurvivesSlotRecycling)
{
    // Shuffle the freelist with an out-of-order cancel storm, then
    // schedule same-tick events: they must still fire in scheduling
    // order even though their slot numbers are no longer monotonic.
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule(5, [] {}));
    for (int i : {3, 0, 6, 1, 7, 2, 5, 4})
        ASSERT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));

    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(InlineAction, CaptureSizeLimits)
{
    // The event path must never fall back to the heap: captures up to
    // kInlineBytes fit, anything bigger is rejected at compile time.
    struct Fits
    {
        unsigned char pad[InlineAction::kInlineBytes];
        void operator()() {}
    };
    struct TooBig
    {
        unsigned char pad[InlineAction::kInlineBytes + 1];
        void operator()() {}
    };
    static_assert(InlineAction::fits<Fits>());
    static_assert(!InlineAction::fits<TooBig>());
    static_assert(InlineAction::kInlineBytes == 48);

    // Move transfers the capture; the source goes empty.
    int hits = 0;
    InlineAction a = [&hits] { ++hits; };
    InlineAction b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
    b = nullptr;
    EXPECT_TRUE(b == nullptr);
}

TEST(InlineAction, DestroysCaptureWhenRetired)
{
    // Cancel must release captured state eagerly (shared_ptr capture
    // observably drops its refcount).
    auto token = std::make_shared<int>(42);
    EventQueue q;
    EventId id = q.schedule(10, [token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    ASSERT_TRUE(q.cancel(id));
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, CancelMiddleKeepsOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventId mid = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.cancel(mid);
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(Simulator, NowAdvancesWithEvents)
{
    Simulator s;
    Time seen = -1;
    s.schedule(100, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, NowIsCurrentInsideNestedEvents)
{
    // Regression test: now() must be updated *before* an event action
    // runs, or submissions scheduled for "now" see a stale clock.
    Simulator s;
    std::vector<Time> seen;
    s.schedule(10, [&] {
        seen.push_back(s.now());
        s.schedule(25, [&] { seen.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(seen, (std::vector<Time>{10, 25}));
}

TEST(Simulator, ScheduleAfterUsesDelay)
{
    Simulator s;
    Time fired = -1;
    s.schedule(5, [&] {
        s.scheduleAfter(7, [&] { fired = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired, 12);
}

TEST(Simulator, RunReturnsEventCount)
{
    Simulator s;
    for (int i = 0; i < 5; ++i)
        s.schedule(i, [] {});
    EXPECT_EQ(s.run(), 5u);
    EXPECT_EQ(s.executedCount(), 5u);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator s;
    int fired = 0;
    s.schedule(10, [&] { ++fired; });
    s.schedule(20, [&] { ++fired; });
    s.schedule(30, [&] { ++fired; });
    EXPECT_EQ(s.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20);
    EXPECT_TRUE(s.pending());
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator s;
    s.runUntil(500);
    EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, EventsAtDeadlineStillFire)
{
    Simulator s;
    bool fired = false;
    s.schedule(20, [&] { fired = true; });
    s.runUntil(20);
    EXPECT_TRUE(fired);
}

TEST(Simulator, CancelScheduledEvent)
{
    Simulator s;
    bool fired = false;
    EventId id = s.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, PendingReflectsQueue)
{
    Simulator s;
    EXPECT_FALSE(s.pending());
    s.schedule(1, [] {});
    EXPECT_TRUE(s.pending());
    s.run();
    EXPECT_FALSE(s.pending());
}

TEST(Simulator, ManyEventsStaySorted)
{
    Simulator s;
    Time last = -1;
    bool monotonic = true;
    // Deterministic pseudo-random times.
    std::uint64_t x = 12345;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Time when = static_cast<Time>(x % 100000);
        s.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    s.run();
    EXPECT_TRUE(monotonic);
}

TEST(EventQueueWheel, TuneWithPendingEventsFlushesAndPreservesOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        q.schedule(static_cast<Time>((i * 37) % 50) * 100'000,
                   [&order, i] { order.push_back(i); });
    // Tuning mid-flight must flush the wheel/heap safely; a second
    // retune with different parameters must be just as safe.
    q.tuneWheel(160'000, 3'800'000);
    EXPECT_TRUE(q.wheelTuned());
    for (int i = 64; i < 128; ++i)
        q.schedule(static_cast<Time>((i * 37) % 50) * 100'000,
                   [&order, i] { order.push_back(i); });
    q.tuneWheel(80'000, 8'000'000);
    EXPECT_TRUE(q.wheelTuned());
    Time t;
    EventAction a;
    Time last = -1;
    while (q.pop(t, a)) {
        EXPECT_GE(t, last);
        last = t;
        a();
    }
    EXPECT_EQ(order.size(), 128u);
    // Same-time events must still fire in schedule order.
    std::vector<int> expected(128);
    for (int i = 0; i < 128; ++i)
        expected[static_cast<std::size_t>(i)] = i;
    std::stable_sort(expected.begin(), expected.end(),
                     [](int a_, int b_) {
                         return (a_ * 37) % 50 < (b_ * 37) % 50;
                     });
    EXPECT_EQ(order, expected);
}

TEST(EventQueueWheel, EpochAdvancesAcrossWindows)
{
    EventQueue q;
    q.tuneWheel(160'000, 3'800'000);
    // Chain far past the first epoch window: each event schedules the
    // next one a full window ahead, forcing repeated re-anchors.
    const Time step = 4 * 3'800'000;
    int fired = 0;
    for (int i = 0; i < 32; ++i)
        q.schedule(static_cast<Time>(i) * step + 160'000,
                   [&fired] { ++fired; });
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(fired, 32);
    EXPECT_GE(q.wheelEpochs(), 2u);
    std::vector<std::string> violations;
    q.auditInvariants(violations);
    EXPECT_TRUE(violations.empty());
}

TEST(EventQueueWheel, UntunedQueueNeverTouchesWheel)
{
    EventQueue q;
    for (int i = 0; i < 256; ++i)
        q.schedule(i * 1000, [] {});
    EXPECT_EQ(q.wheelScheduled(), 0u);
    EXPECT_EQ(q.wheelOccupancy(), 0u);
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(q.wheelEpochs(), 0u);
}
