/**
 * @file
 * Unit tests for the event queue and simulator loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"

using namespace emmcsim::sim;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueue, PopReturnsFalseWhenEmpty)
{
    EventQueue q;
    Time t;
    EventAction a;
    EXPECT_FALSE(q.pop(t, a));
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextTime(), 40);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    Time t;
    EventAction a;
    EXPECT_FALSE(q.pop(t, a));
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(1234));
}

TEST(EventQueue, CancelMiddleKeepsOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventId mid = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.cancel(mid);
    Time t;
    EventAction a;
    while (q.pop(t, a))
        a();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(Simulator, NowAdvancesWithEvents)
{
    Simulator s;
    Time seen = -1;
    s.schedule(100, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, NowIsCurrentInsideNestedEvents)
{
    // Regression test: now() must be updated *before* an event action
    // runs, or submissions scheduled for "now" see a stale clock.
    Simulator s;
    std::vector<Time> seen;
    s.schedule(10, [&] {
        seen.push_back(s.now());
        s.schedule(25, [&] { seen.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(seen, (std::vector<Time>{10, 25}));
}

TEST(Simulator, ScheduleAfterUsesDelay)
{
    Simulator s;
    Time fired = -1;
    s.schedule(5, [&] {
        s.scheduleAfter(7, [&] { fired = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired, 12);
}

TEST(Simulator, RunReturnsEventCount)
{
    Simulator s;
    for (int i = 0; i < 5; ++i)
        s.schedule(i, [] {});
    EXPECT_EQ(s.run(), 5u);
    EXPECT_EQ(s.executedCount(), 5u);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator s;
    int fired = 0;
    s.schedule(10, [&] { ++fired; });
    s.schedule(20, [&] { ++fired; });
    s.schedule(30, [&] { ++fired; });
    EXPECT_EQ(s.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20);
    EXPECT_TRUE(s.pending());
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator s;
    s.runUntil(500);
    EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, EventsAtDeadlineStillFire)
{
    Simulator s;
    bool fired = false;
    s.schedule(20, [&] { fired = true; });
    s.runUntil(20);
    EXPECT_TRUE(fired);
}

TEST(Simulator, CancelScheduledEvent)
{
    Simulator s;
    bool fired = false;
    EventId id = s.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, PendingReflectsQueue)
{
    Simulator s;
    EXPECT_FALSE(s.pending());
    s.schedule(1, [] {});
    EXPECT_TRUE(s.pending());
    s.run();
    EXPECT_FALSE(s.pending());
}

TEST(Simulator, ManyEventsStaySorted)
{
    Simulator s;
    Time last = -1;
    bool monotonic = true;
    // Deterministic pseudo-random times.
    std::uint64_t x = 12345;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Time when = static_cast<Time>(x % 100000);
        s.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    s.run();
    EXPECT_TRUE(monotonic);
}
