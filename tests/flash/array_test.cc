/**
 * @file
 * Unit tests for FlashArray timing: resource reservation on channels
 * and array units, Table V latencies, and op statistics.
 */

#include <gtest/gtest.h>

#include "flash/array.hh"
#include "sim/types.hh"

using namespace emmcsim;
using namespace emmcsim::flash;

namespace {

Geometry
geom2x2(std::vector<PoolConfig> pools = {PoolConfig{4096, 8}})
{
    Geometry g;
    g.channels = 2;
    g.chipsPerChannel = 1;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.pagesPerBlock = 16;
    g.pools = std::move(pools);
    return g;
}

Timing
timing4k()
{
    Timing t;
    t.pools = {Timing::page4k()};
    return t;
}

PageAddr
addrAtPlane(const Geometry &g, std::uint32_t plane, std::uint32_t pool = 0,
            std::uint32_t block = 0, std::uint32_t page = 0)
{
    PageAddr a = addrFromPlaneLinear(g, plane);
    a.pool = pool;
    a.block = block;
    a.page = page;
    return a;
}

} // namespace

TEST(FlashArrayTiming, ReadLatencyBreakdown)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);

    OpResult r = arr.read(addrAtPlane(g, 0), 0);
    EXPECT_EQ(r.start, 0);
    // array read + cmd overhead + 4KB transfer
    sim::Time expect = t.pools[0].readLatency + t.pageCmdOverhead +
                       t.transferTime(4096);
    EXPECT_EQ(r.done, expect);
}

TEST(FlashArrayTiming, PartialTransferShortensRead)
{
    Geometry g = geom2x2({PoolConfig{8192, 8}});
    Timing t;
    t.pools = {Timing::page8k()};
    FlashArray arr(g, t, true);

    OpResult full = arr.read(addrAtPlane(g, 0), 0);
    FlashArray arr2(g, t, true);
    OpResult half = arr2.read(addrAtPlane(g, 0), 0, emmcsim::units::Bytes{4096});
    EXPECT_LT(half.done, full.done);
    EXPECT_EQ(full.done - half.done, t.transferTime(4096));
}

TEST(FlashArrayTiming, TransferClampedToPageSize)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);
    OpResult a = arr.read(addrAtPlane(g, 0), 0, emmcsim::units::Bytes{1 << 20});
    FlashArray arr2(g, t, true);
    OpResult b = arr2.read(addrAtPlane(g, 0), 0, emmcsim::units::Bytes{4096});
    EXPECT_EQ(a.done, b.done);
}

TEST(FlashArrayTiming, ProgramLatencyBreakdown)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);

    OpResult r = arr.program(addrAtPlane(g, 0), 0);
    sim::Time expect = t.pageCmdOverhead + t.transferTime(4096) +
                       t.pools[0].programLatency;
    EXPECT_EQ(r.done, expect);
}

TEST(FlashArrayTiming, EraseLatency)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);
    OpResult r = arr.erase(addrAtPlane(g, 0), 0);
    EXPECT_EQ(r.done, t.pageCmdOverhead + t.eraseLatency);
}

TEST(FlashArrayTiming, SamePlaneOpsSerialize)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);

    OpResult a = arr.read(addrAtPlane(g, 0), 0);
    OpResult b = arr.read(addrAtPlane(g, 0, 0, 0, 1), 0);
    // The second read's array phase waits for the first.
    EXPECT_GE(b.done - a.done, 0);
    EXPECT_GE(b.done, t.pools[0].readLatency * 2);
}

TEST(FlashArrayTiming, DifferentPlanesOverlapWithMultiplane)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);

    // Planes 0 and 1 share a die but multiplane lets arrays overlap;
    // the channel still serializes the two transfers.
    OpResult a = arr.read(addrAtPlane(g, 0), 0);
    OpResult b = arr.read(addrAtPlane(g, 1), 0);
    sim::Time xfer = t.pageCmdOverhead + t.transferTime(4096);
    EXPECT_EQ(a.done, t.pools[0].readLatency + xfer);
    EXPECT_EQ(b.done, a.done + xfer);
}

TEST(FlashArrayTiming, SameDieSerializesWithoutMultiplane)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, false);

    OpResult a = arr.read(addrAtPlane(g, 0), 0);
    (void)a;
    OpResult b = arr.read(addrAtPlane(g, 1), 0); // same die
    // Second array phase starts only after the first finishes.
    EXPECT_GE(b.done, 2 * t.pools[0].readLatency);

    FlashArray arr2(g, t, false);
    arr2.read(addrAtPlane(g, 0), 0);
    OpResult c = arr2.read(addrAtPlane(g, 2), 0); // other die, same ch
    EXPECT_LT(c.done, b.done);
}

TEST(FlashArrayTiming, DifferentChannelsFullyParallel)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);

    OpResult a = arr.read(addrAtPlane(g, 0), 0); // channel 0
    OpResult b = arr.read(addrAtPlane(g, 4), 0); // channel 1
    EXPECT_EQ(a.done, b.done);
}

TEST(FlashArrayTiming, EarliestStartRespected)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);
    OpResult r = arr.read(addrAtPlane(g, 0), sim::milliseconds(5));
    EXPECT_EQ(r.start, sim::milliseconds(5));
}

TEST(FlashArrayTiming, CopybackSkipsDataTransfer)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);
    OpResult cb = arr.copybackRead(addrAtPlane(g, 0), 0);
    EXPECT_EQ(cb.done, t.pageCmdOverhead + t.pools[0].readLatency);

    FlashArray arr2(g, t, true);
    OpResult cp = arr2.copybackProgram(addrAtPlane(g, 0), 0);
    EXPECT_EQ(cp.done, t.pageCmdOverhead + t.pools[0].programLatency);
}

TEST(FlashArrayTiming, Table5LatenciesApplied)
{
    EXPECT_EQ(Timing::page4k().readLatency, sim::microseconds(160));
    EXPECT_EQ(Timing::page4k().programLatency, sim::microseconds(1385));
    EXPECT_EQ(Timing::page8k().readLatency, sim::microseconds(244));
    EXPECT_EQ(Timing::page8k().programLatency, sim::microseconds(1491));
    EXPECT_EQ(Timing{}.eraseLatency, sim::microseconds(3800));
}

TEST(FlashArrayStats, CountsPerPool)
{
    Geometry g = geom2x2({PoolConfig{4096, 4}, PoolConfig{8192, 4}});
    Timing t;
    t.pools = {Timing::page4k(), Timing::page8k()};
    FlashArray arr(g, t, true);

    arr.read(addrAtPlane(g, 0, 0), 0);
    arr.program(addrAtPlane(g, 0, 1), 0);
    arr.erase(addrAtPlane(g, 1, 1), 0);

    EXPECT_EQ(arr.stats(0).reads, 1u);
    EXPECT_EQ(arr.stats(0).programs, 0u);
    EXPECT_EQ(arr.stats(1).programs, 1u);
    EXPECT_EQ(arr.stats(1).erases, 1u);
    EXPECT_EQ(arr.totalStats().reads, 1u);
    EXPECT_EQ(arr.totalStats().programs, 1u);
    EXPECT_EQ(arr.totalStats().erases, 1u);
    EXPECT_EQ(arr.totalStats().bytesRead, 4096u);
    EXPECT_EQ(arr.totalStats().bytesProgrammed, 8192u);
}

TEST(FlashArrayStats, AllIdleAtTracksLatestResource)
{
    Geometry g = geom2x2();
    Timing t = timing4k();
    FlashArray arr(g, t, true);
    EXPECT_EQ(arr.allIdleAt(), 0);
    OpResult r = arr.program(addrAtPlane(g, 3), 0);
    EXPECT_EQ(arr.allIdleAt(), r.done);
}

TEST(FlashArrayTiming, TransferTimeMatchesBandwidth)
{
    Timing t;
    t.channelMBps = 200.0;
    // 200 MB/s => 4096 bytes in 20.48 us.
    EXPECT_NEAR(static_cast<double>(t.transferTime(4096)), 20480.0, 1.0);
}

/** Parameterized: throughput ordering of page sizes for large
 * transfers (8KB pages move more data per array op). */
class ArrayPageSizeSweep
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ArrayPageSizeSweep, BackToBackProgramsRespectArrayLatency)
{
    const std::uint32_t page_bytes = GetParam();
    Geometry g = geom2x2({PoolConfig{page_bytes, 8}});
    Timing t;
    t.pools = {page_bytes == 4096 ? Timing::page4k()
                                  : Timing::page8k()};
    FlashArray arr(g, t, true);

    sim::Time done = 0;
    const int n = 16;
    for (int i = 0; i < n; ++i) {
        OpResult r = arr.program(
            addrAtPlane(g, 0, 0, 0, static_cast<std::uint32_t>(i)), 0);
        done = r.done;
    }
    // All to one plane: total time >= n * programLatency.
    EXPECT_GE(done, n * t.pools[0].programLatency);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, ArrayPageSizeSweep,
                         ::testing::Values(4096u, 8192u));
