/**
 * @file
 * Unit and property tests for BlockPool state transitions.
 */

#include <gtest/gtest.h>

#include "flash/pool.hh"

using namespace emmcsim::flash;

namespace {

BlockPool
makePool(std::uint32_t page_bytes = 4096, std::uint32_t blocks = 4,
         std::uint32_t pages = 8)
{
    return BlockPool(PoolConfig{page_bytes, blocks}, pages);
}

} // namespace

TEST(BlockPool, FreshPoolIsEmpty)
{
    BlockPool p = makePool();
    EXPECT_EQ(p.freeBlockCount(), 4u);
    EXPECT_EQ(p.freePageCount(), 32u);
    EXPECT_TRUE(p.hasFreePage());
    EXPECT_EQ(p.validUnitCount(), 0u);
    EXPECT_EQ(p.activeBlock(), -1);
}

TEST(BlockPool, AllocateAdvancesWritePointer)
{
    BlockPool p = makePool();
    Ppn a = p.allocatePage();
    Ppn b = p.allocatePage();
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(p.totalProgrammedPages(), 2u);
    EXPECT_EQ(p.freePageCount(), 30u);
}

TEST(BlockPool, AllocateOpensNewBlockWhenFull)
{
    BlockPool p = makePool(4096, 2, 4);
    for (int i = 0; i < 4; ++i)
        p.allocatePage();
    std::int32_t first = p.activeBlock();
    EXPECT_TRUE(p.blockFull(BlockId{static_cast<std::uint32_t>(first)}));
    p.allocatePage();
    EXPECT_NE(p.activeBlock(), first);
    EXPECT_EQ(p.freeBlockCount(), 0u);
}

TEST(BlockPool, SetAndInvalidateUnit)
{
    BlockPool p = makePool();
    Ppn ppn = p.allocatePage();
    p.setUnit(ppn, 0, Lpn{77});
    EXPECT_TRUE(p.unitValid(ppn, 0));
    EXPECT_EQ(p.lpnAt(ppn, 0), Lpn{77});
    EXPECT_EQ(p.validUnitsInPage(ppn), 1u);
    EXPECT_EQ(p.validUnitCount(), 1u);

    p.invalidateUnit(ppn, 0);
    EXPECT_FALSE(p.unitValid(ppn, 0));
    EXPECT_EQ(p.validUnitsInPage(ppn), 0u);
    EXPECT_EQ(p.validUnitCount(), 0u);
    // The lpn record remains until erase (useful for debugging).
    EXPECT_EQ(p.lpnAt(ppn, 0), Lpn{77});
}

TEST(BlockPool, MultiUnitPageTracksUnitsIndependently)
{
    BlockPool p = makePool(8192); // 2 units per page
    EXPECT_EQ(p.unitsPerPage(), 2u);
    Ppn ppn = p.allocatePage();
    p.setUnit(ppn, 0, Lpn{10});
    p.setUnit(ppn, 1, Lpn{11});
    EXPECT_EQ(p.validUnitsInPage(ppn), 2u);
    p.invalidateUnit(ppn, 0);
    EXPECT_FALSE(p.unitValid(ppn, 0));
    EXPECT_TRUE(p.unitValid(ppn, 1));
    EXPECT_EQ(p.lpnAt(ppn, 1), Lpn{11});
    EXPECT_EQ(p.validUnitsInPage(ppn), 1u);
}

TEST(BlockPool, BlockValidCounts)
{
    BlockPool p = makePool(4096, 2, 4);
    for (int i = 0; i < 4; ++i) {
        Ppn ppn = p.allocatePage();
        p.setUnit(ppn, 0, Lpn{i});
    }
    EXPECT_EQ(p.validUnitsInBlock(BlockId{0}), 4u);
    p.invalidateUnit(Ppn{1}, 0);
    EXPECT_EQ(p.validUnitsInBlock(BlockId{0}), 3u);
}

TEST(BlockPool, EraseResetsBlock)
{
    BlockPool p = makePool(4096, 2, 4);
    for (int i = 0; i < 4; ++i) {
        Ppn ppn = p.allocatePage();
        p.setUnit(ppn, 0, Lpn{i});
    }
    for (int i = 0; i < 4; ++i)
        p.invalidateUnit(Ppn{static_cast<std::uint64_t>(i)}, 0);
    // Open the other block so block 0 is not active.
    p.allocatePage();
    p.eraseBlock(BlockId{0});

    EXPECT_EQ(p.eraseCount(BlockId{0}), 1u);
    EXPECT_EQ(p.totalErases(), 1u);
    EXPECT_EQ(p.writtenPages(BlockId{0}), 0u);
    EXPECT_EQ(p.lpnAt(Ppn{0}, 0), kNoLpn);
    EXPECT_EQ(p.freeBlockCount(), 1u);
}

TEST(BlockPool, WearLevelingPicksLeastErasedFreeBlock)
{
    BlockPool p = makePool(4096, 3, 2);
    // Fill block A (the first active), then erase it twice so it has
    // a higher erase count than the untouched blocks.
    Ppn a0 = p.allocatePage();
    p.allocatePage();
    BlockId block_a = emmcsim::units::pageToBlock(a0, p.pagesPerBlock());
    // Move active to a new block.
    Ppn b0 = p.allocatePage();
    BlockId block_b = emmcsim::units::pageToBlock(b0, p.pagesPerBlock());
    EXPECT_NE(block_a, block_b);
    p.eraseBlock(block_a);
    // Fill block B and the rest of current blocks to force new opens.
    p.allocatePage(); // fills block B (2 pages/block)
    // Next allocate must open the least-erased free block, not A.
    Ppn c0 = p.allocatePage();
    BlockId block_c = emmcsim::units::pageToBlock(c0, p.pagesPerBlock());
    EXPECT_NE(block_c, block_a);
    EXPECT_EQ(p.eraseCount(block_c), 0u);
}

TEST(BlockPool, EraseSpread)
{
    BlockPool p = makePool(4096, 2, 1);
    p.allocatePage();           // block X active, full
    p.allocatePage();           // block Y active, full
    p.eraseBlock(BlockId{0});   // whichever; spread becomes 1
    EXPECT_EQ(p.eraseSpread(), 1u);
}

TEST(BlockPool, FreePageCountIncludesActiveRemainder)
{
    BlockPool p = makePool(4096, 2, 4);
    p.allocatePage();
    // 3 left in active + 4 in the free block.
    EXPECT_EQ(p.freePageCount(), 7u);
    EXPECT_EQ(p.freeBlockCount(), 1u);
}

TEST(BlockPoolDeath, SetUnitTwicePanics)
{
    BlockPool p = makePool();
    Ppn ppn = p.allocatePage();
    p.setUnit(ppn, 0, Lpn{1});
    EXPECT_DEATH(p.setUnit(ppn, 0, Lpn{2}), "already-valid");
}

TEST(BlockPoolDeath, InvalidateStaleUnitPanics)
{
    BlockPool p = makePool();
    Ppn ppn = p.allocatePage();
    EXPECT_DEATH(p.invalidateUnit(ppn, 0), "stale");
}

TEST(BlockPoolDeath, EraseWithLiveUnitsPanics)
{
    BlockPool p = makePool(4096, 2, 1);
    Ppn ppn = p.allocatePage(); // block full (1 page per block)
    p.setUnit(ppn, 0, Lpn{5});
    p.allocatePage(); // move active elsewhere
    EXPECT_DEATH(
        p.eraseBlock(emmcsim::units::pageToBlock(ppn,
                                                 p.pagesPerBlock())),
        "live units");
}

TEST(BlockPoolDeath, EraseActiveBlockPanics)
{
    BlockPool p = makePool();
    p.allocatePage();
    EXPECT_DEATH(
        p.eraseBlock(BlockId{
            static_cast<std::uint32_t>(p.activeBlock())}),
        "active");
}

TEST(BlockPoolDeath, AllocateWhenExhaustedPanics)
{
    BlockPool p = makePool(4096, 1, 2);
    p.allocatePage();
    p.allocatePage();
    EXPECT_DEATH(p.allocatePage(), "GC required");
}

/** Property sweep: conservation of pages across many write/erase
 * cycles, for both page sizes. */
class BlockPoolPageSize : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BlockPoolPageSize, ConservationUnderChurn)
{
    const std::uint32_t page_bytes = GetParam();
    BlockPool p(PoolConfig{page_bytes, 8}, 16);
    const std::uint32_t upp = p.unitsPerPage();
    const std::uint64_t total_pages = p.pageCount();

    Lpn next_lpn{0};
    std::vector<std::pair<Ppn, std::uint32_t>> live; // (ppn, unit)

    for (int round = 0; round < 5; ++round) {
        // Write until only one free block remains.
        while (p.freeBlockCount() > 1) {
            Ppn ppn = p.allocatePage();
            for (std::uint32_t u = 0; u < upp; ++u) {
                p.setUnit(ppn, u, next_lpn++);
                live.emplace_back(ppn, u);
            }
        }
        // Invalidate everything and erase all full, inactive blocks.
        for (auto [ppn, u] : live)
            p.invalidateUnit(ppn, u);
        live.clear();
        for (std::uint32_t b = 0; b < p.blockCount(); ++b) {
            const BlockId bid{b};
            if (p.blockFull(bid) && p.validUnitsInBlock(bid) == 0 &&
                static_cast<std::int32_t>(b) != p.activeBlock()) {
                p.eraseBlock(bid);
            }
        }
        // Invariant: free + written pages == total pages.
        std::uint64_t written = 0;
        for (std::uint32_t b = 0; b < p.blockCount(); ++b)
            written += p.writtenPages(BlockId{b});
        EXPECT_EQ(written + p.freePageCount(), total_pages);
        EXPECT_EQ(p.validUnitCount(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BlockPoolPageSize,
                         ::testing::Values(4096u, 8192u));
