/**
 * @file
 * Unit tests for flash geometry and physical addressing.
 */

#include <gtest/gtest.h>

#include "emmc/config.hh"
#include "flash/geometry.hh"

using namespace emmcsim;
using namespace emmcsim::flash;

namespace {

Geometry
smallGeom()
{
    Geometry g;
    g.channels = 2;
    g.chipsPerChannel = 1;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.pagesPerBlock = 16;
    g.pools = {PoolConfig{4096, 8}};
    return g;
}

} // namespace

TEST(PoolConfig, UnitsPerPage)
{
    EXPECT_EQ((PoolConfig{4096, 1}).unitsPerPage(), 1u);
    EXPECT_EQ((PoolConfig{8192, 1}).unitsPerPage(), 2u);
    EXPECT_EQ((PoolConfig{16384, 1}).unitsPerPage(), 4u);
}

TEST(Geometry, PlaneAndDieCounts)
{
    Geometry g = smallGeom();
    EXPECT_EQ(g.planeCount(), 8u);
    EXPECT_EQ(g.dieCount(), 4u);
}

TEST(Geometry, CapacitySinglePool)
{
    Geometry g = smallGeom();
    // 8 planes * 8 blocks * 16 pages * 4KB
    EXPECT_EQ(g.capacityBytes().value(), 8ull * 8 * 16 * 4096);
    EXPECT_EQ(g.capacityUnits(), 8ull * 8 * 16);
}

TEST(Geometry, CapacityMultiPool)
{
    Geometry g = smallGeom();
    g.pools = {PoolConfig{4096, 8}, PoolConfig{8192, 4}};
    // per plane: 8*16*4KB + 4*16*8KB = 512KB + 512KB
    EXPECT_EQ(g.capacityBytes().value(), 8ull * (512 + 512) * 1024);
}

TEST(Geometry, BlockBytes)
{
    Geometry g = smallGeom();
    g.pools = {PoolConfig{4096, 8}, PoolConfig{8192, 4}};
    EXPECT_EQ(g.blockBytes(0).value(), 16ull * 4096);
    EXPECT_EQ(g.blockBytes(1).value(), 16ull * 8192);
}

TEST(Geometry, Table5CapacitiesAreAll32GB)
{
    // All three paper schemes must export identical raw capacity.
    auto g4 = emmc::make4psConfig().geometry;
    auto g8 = emmc::make8psConfig().geometry;
    auto gh = emmc::makeHpsConfig().geometry;
    const std::uint64_t gib32 = 32ull << 30;
    EXPECT_EQ(g4.capacityBytes().value(), gib32);
    EXPECT_EQ(g8.capacityBytes().value(), gib32);
    EXPECT_EQ(gh.capacityBytes().value(), gib32);
}

TEST(Geometry, Table5Hierarchy)
{
    auto g = emmc::make4psConfig().geometry;
    EXPECT_EQ(g.channels, 2u);
    EXPECT_EQ(g.chipsPerChannel, 1u);
    EXPECT_EQ(g.diesPerChip, 2u);
    EXPECT_EQ(g.planesPerDie, 2u);
    EXPECT_EQ(g.pagesPerBlock, 1024u);
}

TEST(Geometry, HpsPoolLayoutMatchesFig10)
{
    auto g = emmc::makeHpsConfig().geometry;
    ASSERT_EQ(g.pools.size(), 2u);
    EXPECT_EQ(g.pools[emmc::kHps4kPool].pageBytes, 4096u);
    EXPECT_EQ(g.pools[emmc::kHps4kPool].blocksPerPlane, 512u);
    EXPECT_EQ(g.pools[emmc::kHps8kPool].pageBytes, 8192u);
    EXPECT_EQ(g.pools[emmc::kHps8kPool].blocksPerPlane, 256u);
}

TEST(Addressing, PlaneLinearRoundTrips)
{
    Geometry g = smallGeom();
    for (std::uint32_t p = 0; p < g.planeCount(); ++p) {
        PageAddr a = addrFromPlaneLinear(g, p);
        EXPECT_EQ(planeLinear(g, a), p);
    }
}

TEST(Addressing, PlaneLinearOrdering)
{
    Geometry g = smallGeom();
    PageAddr a;
    a.channel = 0;
    a.chip = 0;
    a.die = 0;
    a.plane = 0;
    EXPECT_EQ(planeLinear(g, a), 0u);
    a.plane = 1;
    EXPECT_EQ(planeLinear(g, a), 1u);
    a.plane = 0;
    a.die = 1;
    EXPECT_EQ(planeLinear(g, a), 2u);
    a.die = 0;
    a.channel = 1;
    EXPECT_EQ(planeLinear(g, a), 4u);
}

TEST(Addressing, DieLinear)
{
    Geometry g = smallGeom();
    PageAddr a;
    a.channel = 1;
    a.die = 1;
    EXPECT_EQ(dieLinear(g, a), 3u);
    a.die = 0;
    EXPECT_EQ(dieLinear(g, a), 2u);
}

TEST(Addressing, PlanesOfSameDieShareDieLinear)
{
    Geometry g = smallGeom();
    PageAddr a = addrFromPlaneLinear(g, 2);
    PageAddr b = addrFromPlaneLinear(g, 3);
    EXPECT_EQ(dieLinear(g, a), dieLinear(g, b));
    PageAddr c = addrFromPlaneLinear(g, 4);
    EXPECT_NE(dieLinear(g, a), dieLinear(g, c));
}
