/**
 * @file
 * Unit tests for the eMMC packed-write policy.
 */

#include <gtest/gtest.h>

#include "emmc/packing.hh"

using namespace emmcsim;
using namespace emmcsim::emmc;

namespace {

IoRequest
req(bool write, std::uint64_t size_bytes = 4096)
{
    IoRequest r;
    r.write = write;
    r.sizeBytes = emmcsim::units::Bytes{size_bytes};
    return r;
}

} // namespace

TEST(WritePacker, SingleRequestUnpacked)
{
    WritePacker p(PackingConfig{});
    std::deque<IoRequest> q = {req(true)};
    EXPECT_EQ(p.packCount(q), 1u);
    EXPECT_EQ(p.stats().packedCommands, 0u);
}

TEST(WritePacker, ReadsNeverPack)
{
    WritePacker p(PackingConfig{});
    std::deque<IoRequest> q = {req(false), req(false), req(false)};
    EXPECT_EQ(p.packCount(q), 1u);
}

TEST(WritePacker, ConsecutiveWritesPack)
{
    WritePacker p(PackingConfig{});
    std::deque<IoRequest> q = {req(true), req(true), req(true)};
    EXPECT_EQ(p.packCount(q), 3u);
    EXPECT_EQ(p.stats().packedCommands, 1u);
    EXPECT_EQ(p.stats().packedRequests, 3u);
}

TEST(WritePacker, ReadStopsThePack)
{
    WritePacker p(PackingConfig{});
    std::deque<IoRequest> q = {req(true), req(true), req(false),
                               req(true)};
    EXPECT_EQ(p.packCount(q), 2u);
}

TEST(WritePacker, RequestCapRespected)
{
    PackingConfig cfg;
    cfg.maxRequests = 4;
    WritePacker p(cfg);
    std::deque<IoRequest> q(10, req(true));
    EXPECT_EQ(p.packCount(q), 4u);
}

TEST(WritePacker, ByteCapRespected)
{
    PackingConfig cfg;
    cfg.maxBytes = emmcsim::units::Bytes{10 * 4096};
    WritePacker p(cfg);
    std::deque<IoRequest> q(10, req(true, 4 * 4096));
    // 2 requests = 8 units; a third would exceed 10 units.
    EXPECT_EQ(p.packCount(q), 2u);
}

TEST(WritePacker, OversizedFirstWriteStillDispatches)
{
    PackingConfig cfg;
    cfg.maxBytes = emmcsim::units::Bytes{4096};
    WritePacker p(cfg);
    std::deque<IoRequest> q = {req(true, 1 << 20), req(true)};
    EXPECT_EQ(p.packCount(q), 1u);
}

TEST(WritePacker, DisabledNeverPacks)
{
    PackingConfig cfg;
    cfg.enabled = false;
    WritePacker p(cfg);
    std::deque<IoRequest> q(5, req(true));
    EXPECT_EQ(p.packCount(q), 1u);
    EXPECT_EQ(p.stats().packedCommands, 0u);
}

TEST(WritePacker, StatsAccumulate)
{
    WritePacker p(PackingConfig{});
    std::deque<IoRequest> q(3, req(true));
    p.packCount(q);
    p.packCount(q);
    EXPECT_EQ(p.stats().packedCommands, 2u);
    EXPECT_EQ(p.stats().packedRequests, 6u);
}
