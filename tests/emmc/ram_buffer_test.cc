/**
 * @file
 * Unit tests for the controller RAM buffer (Implication 3 ablation).
 */

#include <gtest/gtest.h>

#include "emmc/ram_buffer.hh"

using namespace emmcsim;
using namespace emmcsim::emmc;

namespace {

BufferConfig
cfg(std::uint64_t units, bool read_allocate = true)
{
    BufferConfig c;
    c.enabled = true;
    c.capacityUnits = units;
    c.readAllocate = read_allocate;
    return c;
}

} // namespace

TEST(RamBuffer, WriteThenReadHits)
{
    RamBuffer b(cfg(16));
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{10}, 4, ev);
    EXPECT_TRUE(ev.empty());

    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev2;
    EXPECT_EQ(b.read(flash::Lpn{10}, 4, misses, ev2), 4u);
    EXPECT_TRUE(misses.empty());
    EXPECT_DOUBLE_EQ(b.stats().readHitRate(), 1.0);
}

TEST(RamBuffer, ColdReadMisses)
{
    RamBuffer b(cfg(16));
    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev;
    EXPECT_EQ(b.read(flash::Lpn{0}, 4, misses, ev), 0u);
    ASSERT_EQ(misses.size(), 1u);
    EXPECT_EQ(misses[0].first, flash::Lpn{0});
    EXPECT_EQ(misses[0].count, 4u);
}

TEST(RamBuffer, ReadAllocateMakesReReadHit)
{
    RamBuffer b(cfg(16));
    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev;
    b.read(flash::Lpn{0}, 2, misses, ev);
    misses.clear();
    EXPECT_EQ(b.read(flash::Lpn{0}, 2, misses, ev), 2u);
    EXPECT_TRUE(misses.empty());
}

TEST(RamBuffer, NoReadAllocateKeepsMissing)
{
    RamBuffer b(cfg(16, false));
    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev;
    b.read(flash::Lpn{0}, 2, misses, ev);
    misses.clear();
    EXPECT_EQ(b.read(flash::Lpn{0}, 2, misses, ev), 0u);
    EXPECT_EQ(b.residentUnits(), 0u);
}

TEST(RamBuffer, PartialHitSplitsMissRuns)
{
    RamBuffer b(cfg(16));
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{2}, 1, ev); // unit 2 cached
    std::vector<UnitRun> misses;
    b.read(flash::Lpn{0}, 5, misses, ev); // 0,1 miss; 2 hits; 3,4 miss
    ASSERT_EQ(misses.size(), 2u);
    EXPECT_EQ(misses[0].first, flash::Lpn{0});
    EXPECT_EQ(misses[0].count, 2u);
    EXPECT_EQ(misses[1].first, flash::Lpn{3});
    EXPECT_EQ(misses[1].count, 2u);
}

TEST(RamBuffer, EvictionIsLru)
{
    RamBuffer b(cfg(4));
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{0}, 4, ev); // fills capacity: 0,1,2,3
    EXPECT_TRUE(ev.empty());
    // Touch 0 so 1 becomes LRU.
    std::vector<UnitRun> misses;
    b.read(flash::Lpn{0}, 1, misses, ev);
    b.write(flash::Lpn{100}, 1, ev); // evicts unit 1 (dirty)
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].first, flash::Lpn{1});
    EXPECT_EQ(ev[0].count, 1u);
}

TEST(RamBuffer, EvictionCoalescesRuns)
{
    RamBuffer b(cfg(4));
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{0}, 4, ev);
    b.write(flash::Lpn{100}, 4, ev); // evicts 0..3 as one run
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].first, flash::Lpn{0});
    EXPECT_EQ(ev[0].count, 4u);
    EXPECT_EQ(b.stats().evictedDirty, 4u);
}

TEST(RamBuffer, CleanEvictionsAreSilent)
{
    RamBuffer b(cfg(2));
    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev;
    b.read(flash::Lpn{0}, 2, misses, ev); // 0,1 cached clean
    b.read(flash::Lpn{10}, 2, misses, ev); // evicts 0,1 clean
    EXPECT_TRUE(ev.empty());
}

TEST(RamBuffer, OverwriteCountsWriteHit)
{
    RamBuffer b(cfg(8));
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{0}, 2, ev);
    b.write(flash::Lpn{0}, 2, ev);
    EXPECT_EQ(b.stats().writeHits, 2u);
    EXPECT_EQ(b.residentUnits(), 2u);
}

TEST(RamBuffer, FlushAllReturnsDirtyOnly)
{
    RamBuffer b(cfg(8));
    std::vector<UnitRun> misses;
    std::vector<UnitRun> ev;
    b.write(flash::Lpn{0}, 2, ev);       // dirty 0,1
    b.read(flash::Lpn{10}, 2, misses, ev); // clean 10,11
    std::vector<UnitRun> flushed;
    b.flushAll(flushed);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].first, flash::Lpn{0});
    EXPECT_EQ(flushed[0].count, 2u);
    EXPECT_EQ(b.residentUnits(), 0u);
}

TEST(RamBuffer, HitRateZeroWhenNoLookups)
{
    RamBuffer b(cfg(8));
    EXPECT_DOUBLE_EQ(b.stats().readHitRate(), 0.0);
}
