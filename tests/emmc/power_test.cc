/**
 * @file
 * Unit tests for the low-power state machine (Characteristic 4).
 */

#include <gtest/gtest.h>

#include "emmc/power.hh"

using namespace emmcsim;
using namespace emmcsim::emmc;

namespace {

PowerConfig
enabledCfg()
{
    PowerConfig cfg;
    cfg.enabled = true;
    cfg.idleThreshold = sim::milliseconds(200);
    cfg.wakeLatency = sim::milliseconds(5);
    return cfg;
}

} // namespace

TEST(PowerManager, DisabledNeverPenalizes)
{
    PowerManager pm(PowerConfig{});
    pm.onIdle(0);
    EXPECT_EQ(pm.wakePenalty(sim::seconds(100)), 0);
    EXPECT_FALSE(pm.inLowPower(sim::seconds(100)));
    EXPECT_EQ(pm.stats().wakeups, 0u);
}

TEST(PowerManager, ShortIdleStaysWarm)
{
    PowerManager pm(enabledCfg());
    pm.onIdle(0);
    EXPECT_EQ(pm.wakePenalty(sim::milliseconds(100)), 0);
    EXPECT_EQ(pm.stats().wakeups, 0u);
}

TEST(PowerManager, LongIdlePaysWakeLatency)
{
    PowerManager pm(enabledCfg());
    pm.onIdle(0);
    EXPECT_EQ(pm.wakePenalty(sim::milliseconds(500)),
              sim::milliseconds(5));
    EXPECT_EQ(pm.stats().wakeups, 1u);
}

TEST(PowerManager, ThresholdBoundaryEntersLowPower)
{
    PowerManager pm(enabledCfg());
    pm.onIdle(0);
    EXPECT_TRUE(pm.inLowPower(sim::milliseconds(200)));
    EXPECT_FALSE(pm.inLowPower(sim::milliseconds(199)));
}

TEST(PowerManager, ResidencyAccounting)
{
    PowerManager pm(enabledCfg());
    pm.onIdle(0);
    pm.wakePenalty(sim::milliseconds(500));
    // 200ms active (pre-threshold) + 300ms low power.
    EXPECT_EQ(pm.stats().activeTime, sim::milliseconds(200));
    EXPECT_EQ(pm.stats().lowPowerTime, sim::milliseconds(300));
}

TEST(PowerManager, RepeatedCyclesAccumulate)
{
    PowerManager pm(enabledCfg());
    sim::Time t = 0;
    for (int i = 0; i < 3; ++i) {
        pm.onIdle(t);
        t += sim::milliseconds(400);
        pm.wakePenalty(t);
        t += sim::milliseconds(10);
    }
    EXPECT_EQ(pm.stats().wakeups, 3u);
    EXPECT_EQ(pm.stats().lowPowerTime, 3 * sim::milliseconds(200));
}

TEST(PowerManager, EnergyReflectsResidency)
{
    PowerConfig cfg = enabledCfg();
    cfg.activeMw = 100.0;
    cfg.lowPowerMw = 1.0;
    PowerManager pm(cfg);
    pm.onIdle(0);
    pm.wakePenalty(sim::seconds(1)); // 0.2s active, 0.8s low power
    EXPECT_NEAR(pm.energyMj(), 0.2 * 100.0 + 0.8 * 1.0, 1e-9);
}

TEST(PowerManager, ShortIdleCountsActiveResidency)
{
    PowerManager pm(enabledCfg());
    pm.onIdle(0);
    pm.wakePenalty(sim::milliseconds(50));
    EXPECT_EQ(pm.stats().activeTime, sim::milliseconds(50));
    EXPECT_EQ(pm.stats().lowPowerTime, 0);
}
