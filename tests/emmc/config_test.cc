/**
 * @file
 * Table V configuration preset tests.
 */

#include <gtest/gtest.h>

#include "emmc/config.hh"

using namespace emmcsim;
using namespace emmcsim::emmc;

TEST(Config, NamesMatchSchemes)
{
    EXPECT_EQ(make4psConfig().name, "4PS");
    EXPECT_EQ(make8psConfig().name, "8PS");
    EXPECT_EQ(makeHpsConfig().name, "HPS");
}

TEST(Config, TimingPoolsParallelGeometryPools)
{
    for (const EmmcConfig &cfg :
         {make4psConfig(), make8psConfig(), makeHpsConfig()}) {
        EXPECT_EQ(cfg.timing.pools.size(), cfg.geometry.pools.size());
    }
}

TEST(Config, Table5Latencies)
{
    auto c4 = make4psConfig();
    EXPECT_EQ(c4.timing.pools[0].readLatency, sim::microseconds(160));
    EXPECT_EQ(c4.timing.pools[0].programLatency,
              sim::microseconds(1385));

    auto c8 = make8psConfig();
    EXPECT_EQ(c8.timing.pools[0].readLatency, sim::microseconds(244));
    EXPECT_EQ(c8.timing.pools[0].programLatency,
              sim::microseconds(1491));

    auto ch = makeHpsConfig();
    EXPECT_EQ(ch.timing.pools[kHps4kPool].readLatency,
              sim::microseconds(160));
    EXPECT_EQ(ch.timing.pools[kHps8kPool].readLatency,
              sim::microseconds(244));
}

TEST(Config, BlocksPerPlaneMatchTable5)
{
    EXPECT_EQ(make4psConfig().geometry.pools[0].blocksPerPlane, 1024u);
    EXPECT_EQ(make8psConfig().geometry.pools[0].blocksPerPlane, 512u);
}

TEST(Config, DefaultsMatchPaperSetup)
{
    auto cfg = make4psConfig();
    EXPECT_FALSE(cfg.power.enabled);   // Fig 8: pure device comparison
    EXPECT_FALSE(cfg.buffer.enabled);  // paper disables the RAM buffer
    EXPECT_TRUE(cfg.packing.enabled);  // eMMC 4.5 packed commands
    EXPECT_FALSE(cfg.multiplane);      // Implication 1: limited parallelism
    EXPECT_FALSE(cfg.idleGcEnabled);
}

TEST(Config, HpsDefaultReadPoolIs4k)
{
    EXPECT_EQ(makeHpsConfig().ftl.defaultReadPool, kHps4kPool);
}

TEST(Config, GeometriesValidate)
{
    // validate() fatals on inconsistency; reaching here means pass.
    make4psConfig().geometry.validate();
    make8psConfig().geometry.validate();
    makeHpsConfig().geometry.validate();
    SUCCEED();
}

TEST(Config, HslcExtensionLayout)
{
    auto cfg = makeHpsSlcConfig();
    EXPECT_EQ(cfg.name, "HSLC");
    // Same block counts as HPS, half the pages in the 4KB pool.
    EXPECT_EQ(cfg.geometry.pools[kHps4kPool].blocksPerPlane, 512u);
    EXPECT_EQ(cfg.geometry.pools[kHps4kPool].pagesPerBlockOverride,
              512u);
    EXPECT_EQ(cfg.geometry.poolPagesPerBlock(kHps4kPool), 512u);
    EXPECT_EQ(cfg.geometry.poolPagesPerBlock(kHps8kPool), 1024u);
    // 50% density loss on the 4KB pool: 32 GB -> 24 GB.
    EXPECT_EQ(cfg.geometry.capacityBytes().value(), 24ull << 30);
    // SLC-mode latencies are strictly faster than the MLC 4KB pool.
    auto mlc = makeHpsConfig().timing.pools[kHps4kPool];
    auto slc = cfg.timing.pools[kHps4kPool];
    EXPECT_LT(slc.readLatency, mlc.readLatency);
    EXPECT_LT(slc.programLatency, mlc.programLatency);
}
