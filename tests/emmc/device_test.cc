/**
 * @file
 * EmmcDevice behaviour tests on a small device: command
 * serialization, NoWait semantics, packing, power mode, RAM buffer,
 * idle GC, and space utilization.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/hps.hh"
#include "emmc/device.hh"
#include "sim/simulator.hh"

using namespace emmcsim;
using namespace emmcsim::emmc;

namespace {

/** Small single-pool device config (fast to construct). */
EmmcConfig
tinyConfig(std::uint32_t page_bytes = 4096)
{
    EmmcConfig cfg;
    cfg.name = page_bytes == 4096 ? "4PS" : "8PS";
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.pagesPerBlock = 8;
    cfg.geometry.pools = {flash::PoolConfig{page_bytes, 32}};
    cfg.timing.pools = {page_bytes == 4096 ? flash::Timing::page4k()
                                           : flash::Timing::page8k()};
    cfg.ftl.opRatio = 0.25;
    return cfg;
}

std::unique_ptr<ftl::RequestDistributor>
tinyDistributor(std::uint32_t page_bytes = 4096)
{
    return std::make_unique<ftl::SinglePoolDistributor>(
        0, page_bytes / 4096, page_bytes == 4096 ? "4PS" : "8PS");
}

IoRequest
makeReq(std::uint64_t id, sim::Time arrival, std::uint64_t unit,
        std::uint32_t units, bool write)
{
    IoRequest r;
    r.id = id;
    r.arrival = arrival;
    r.lbaSector = emmcsim::units::unitToLba(
        emmcsim::units::UnitAddr{static_cast<std::int64_t>(unit)});
    r.sizeBytes = emmcsim::units::unitsToBytes(units);
    r.write = write;
    return r;
}

/** Submit all requests at their arrival times and run to completion. */
std::vector<CompletedRequest>
runRequests(sim::Simulator &s, EmmcDevice &dev,
            const std::vector<IoRequest> &reqs)
{
    std::vector<CompletedRequest> done;
    dev.setCompletionCallback(
        [&done](const CompletedRequest &c) { done.push_back(c); });
    for (const IoRequest &r : reqs)
        s.schedule(r.arrival, [&dev, r] { dev.submit(r); });
    s.run();
    return done;
}

} // namespace

TEST(EmmcDevice, SingleReadTimestamps)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    auto done = runRequests(s, dev, {makeReq(1, 100, 0, 1, false)});

    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].request.id, 1u);
    EXPECT_EQ(done[0].serviceStart, 100);
    EXPECT_GT(done[0].finish, 100);
    EXPECT_FALSE(done[0].waited);
    EXPECT_EQ(dev.stats().requests, 1u);
    EXPECT_EQ(dev.stats().readRequests, 1u);
    EXPECT_EQ(dev.stats().noWaitRequests, 1u);
}

TEST(EmmcDevice, ReadServiceTimeIncludesAllPhases)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    EmmcDevice dev(s, cfg, tinyDistributor());
    auto done = runRequests(s, dev, {makeReq(0, 0, 0, 1, false)});
    sim::Time service = done[0].finish - done[0].serviceStart;
    // command overhead + array read + page cmd + transfer
    sim::Time expect = cfg.commandOverhead +
                       cfg.timing.pools[0].readLatency +
                       cfg.timing.pageCmdOverhead +
                       cfg.timing.transferTime(4096);
    EXPECT_EQ(service, expect);
}

TEST(EmmcDevice, SecondRequestWaitsWhileBusy)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    auto done = runRequests(
        s, dev,
        {makeReq(0, 0, 0, 1, false), makeReq(1, 10, 8, 1, false)});
    ASSERT_EQ(done.size(), 2u);
    EXPECT_FALSE(done[0].waited);
    EXPECT_TRUE(done[1].waited);
    // Second starts exactly when the first finishes.
    EXPECT_EQ(done[1].serviceStart, done[0].finish);
    EXPECT_EQ(dev.stats().noWaitRequests, 1u);
}

TEST(EmmcDevice, WellSpacedRequestsNeverWait)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    std::vector<IoRequest> reqs;
    for (int i = 0; i < 5; ++i) {
        reqs.push_back(makeReq(static_cast<std::uint64_t>(i),
                               sim::milliseconds(100) * i,
                               static_cast<std::uint64_t>(i), 1, false));
    }
    auto done = runRequests(s, dev, reqs);
    EXPECT_EQ(dev.stats().noWaitRequests, 5u);
    EXPECT_DOUBLE_EQ(dev.stats().noWaitRatio(), 1.0);
    for (const auto &c : done)
        EXPECT_EQ(c.serviceStart, c.request.arrival);
}

TEST(EmmcDevice, QueuedWritesPackIntoOneCommand)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    EmmcDevice dev(s, cfg, tinyDistributor());
    // First request occupies the device; three writes queue behind and
    // pack into a single command.
    std::vector<IoRequest> reqs = {makeReq(0, 0, 0, 4, true),
                                   makeReq(1, 1, 8, 1, true),
                                   makeReq(2, 2, 16, 1, true),
                                   makeReq(3, 3, 24, 1, true)};
    auto done = runRequests(s, dev, reqs);
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(dev.stats().commands, 2u);
    EXPECT_EQ(dev.packingStats().packedCommands, 1u);
    EXPECT_EQ(dev.packingStats().packedRequests, 3u);
    EXPECT_TRUE(done[1].packed);
    EXPECT_EQ(done[1].finish, done[3].finish); // shared completion
}

TEST(EmmcDevice, PackingDisabledKeepsCommandsSeparate)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.packing.enabled = false;
    EmmcDevice dev(s, cfg, tinyDistributor());
    std::vector<IoRequest> reqs = {makeReq(0, 0, 0, 1, true),
                                   makeReq(1, 1, 8, 1, true),
                                   makeReq(2, 2, 16, 1, true)};
    runRequests(s, dev, reqs);
    EXPECT_EQ(dev.stats().commands, 3u);
    EXPECT_EQ(dev.packingStats().packedCommands, 0u);
}

TEST(EmmcDevice, WakePenaltyInflatesServiceAfterLongIdle)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.power.enabled = true;
    cfg.power.idleThreshold = sim::milliseconds(200);
    cfg.power.wakeLatency = sim::milliseconds(5);
    EmmcDevice dev(s, cfg, tinyDistributor());
    auto done = runRequests(
        s, dev,
        {makeReq(0, 0, 0, 1, false),
         makeReq(1, sim::seconds(1), 8, 1, false)});
    sim::Time s0 = done[0].finish - done[0].serviceStart;
    sim::Time s1 = done[1].finish - done[1].serviceStart;
    // The first request arrives at t=0 with zero idle time (warm); the
    // second slept a full second and pays the warm-up inside service.
    EXPECT_EQ(s1 - s0, sim::milliseconds(5));
    EXPECT_EQ(dev.powerStats().wakeups, 1u);
    // Still counted as NoWait: the queue was empty.
    EXPECT_EQ(dev.stats().noWaitRequests, 2u);
    // And serviceStart equals arrival (warm-up is service, not wait).
    EXPECT_EQ(done[1].serviceStart, done[1].request.arrival);
}

TEST(EmmcDevice, WarmRequestsSkipWakePenalty)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.power.enabled = true;
    cfg.power.idleThreshold = sim::milliseconds(200);
    cfg.power.wakeLatency = sim::milliseconds(5);
    EmmcDevice dev(s, cfg, tinyDistributor());
    auto done = runRequests(
        s, dev,
        {makeReq(0, sim::seconds(1), 0, 1, false),
         makeReq(1, sim::seconds(1) + sim::milliseconds(50), 8, 1,
                 false)});
    sim::Time s0 = done[0].finish - done[0].serviceStart;
    sim::Time s1 = done[1].finish - done[1].serviceStart;
    EXPECT_EQ(s0 - s1, sim::milliseconds(5));
    EXPECT_EQ(dev.powerStats().wakeups, 1u);
}

TEST(EmmcDevice, SpaceUtilizationPadding)
{
    // One-unit writes on an 8KB-page device waste half of each page.
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(8192), tinyDistributor(8192));
    std::vector<IoRequest> reqs;
    for (int i = 0; i < 8; ++i) {
        reqs.push_back(makeReq(static_cast<std::uint64_t>(i),
                               sim::milliseconds(10) * i,
                               static_cast<std::uint64_t>(i) * 16, 1,
                               true));
    }
    runRequests(s, dev, reqs);
    EXPECT_DOUBLE_EQ(dev.spaceUtilization(), 0.5);
}

TEST(EmmcDevice, SpaceUtilizationPerfectFor4k)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    auto reqs = std::vector<IoRequest>{makeReq(0, 0, 0, 5, true)};
    runRequests(s, dev, reqs);
    EXPECT_DOUBLE_EQ(dev.spaceUtilization(), 1.0);
}

TEST(EmmcDevice, RamBufferAbsorbsWrites)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.buffer.enabled = true;
    cfg.buffer.capacityUnits = 64;
    EmmcDevice dev(s, cfg, tinyDistributor());
    auto done = runRequests(s, dev, {makeReq(0, 0, 0, 2, true)});
    // Fits entirely in RAM: no flash program happened.
    EXPECT_EQ(dev.array().totalStats().programs, 0u);
    // Service = just the command overhead.
    EXPECT_EQ(done[0].finish - done[0].serviceStart,
              cfg.commandOverhead);
}

TEST(EmmcDevice, RamBufferServesReadHits)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.buffer.enabled = true;
    cfg.buffer.capacityUnits = 64;
    EmmcDevice dev(s, cfg, tinyDistributor());
    runRequests(s, dev,
                {makeReq(0, 0, 0, 2, true),
                 makeReq(1, sim::milliseconds(1), 0, 2, false)});
    EXPECT_EQ(dev.array().totalStats().reads, 0u);
    EXPECT_DOUBLE_EQ(dev.bufferStats().readHitRate(), 1.0);
}

TEST(EmmcDevice, IdleGcRunsDuringGaps)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.ftl.gc.softFreeBlocks = 32; // every pool below soft threshold
    cfg.idleGcEnabled = true;
    cfg.idleGcDelay = sim::milliseconds(10);
    cfg.idleGcStepGap = sim::milliseconds(1);
    EmmcDevice dev(s, cfg, tinyDistributor());

    // Dirty the device with overwrites, then leave a long idle gap.
    std::vector<IoRequest> reqs;
    std::uint64_t id = 0;
    for (int round = 0; round < 6; ++round) {
        for (std::uint64_t u = 0; u < 24; u += 4) {
            reqs.push_back(makeReq(id, sim::milliseconds(5) *
                                           static_cast<sim::Time>(id),
                                   u, 4, true));
            ++id;
        }
    }
    runRequests(s, dev, reqs);
    s.runUntil(s.now() + sim::seconds(2));
    EXPECT_GT(dev.ftl().gcStats().idleSteps, 0u);
}

TEST(EmmcDevice, CompletionOrderIsFifo)
{
    sim::Simulator s;
    EmmcConfig cfg = tinyConfig();
    cfg.packing.enabled = false;
    EmmcDevice dev(s, cfg, tinyDistributor());
    std::vector<IoRequest> reqs;
    for (std::uint64_t i = 0; i < 6; ++i)
        reqs.push_back(makeReq(i, static_cast<sim::Time>(i), i * 8, 1,
                               i % 2 == 0));
    auto done = runRequests(s, dev, reqs);
    ASSERT_EQ(done.size(), 6u);
    for (std::uint64_t i = 0; i < 6; ++i)
        EXPECT_EQ(done[i].request.id, i);
}

TEST(EmmcDevice, BusyAndQueueDepth)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    EXPECT_FALSE(dev.busy());
    EXPECT_EQ(dev.queueDepth(), 0u);
    s.schedule(0, [&] {
        dev.submit(makeReq(0, 0, 0, 1, false));
        EXPECT_TRUE(dev.busy());
    });
    s.run();
    EXPECT_FALSE(dev.busy());
}

TEST(EmmcDeviceDeath, MisalignedRequestPanics)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    IoRequest bad = makeReq(0, 0, 0, 1, false);
    bad.sizeBytes = emmcsim::units::Bytes{1000};
    EXPECT_DEATH(dev.submit(bad), "4KB multiple");
    IoRequest bad2 = makeReq(0, 0, 0, 1, false);
    bad2.lbaSector = emmcsim::units::Lba{3};
    EXPECT_DEATH(dev.submit(bad2), "4KB-aligned");
}

TEST(EmmcDevice, QueueDepthStats)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    // Three back-to-back arrivals: depths seen are 0, 1, 2.
    std::vector<IoRequest> reqs = {makeReq(0, 0, 0, 1, false),
                                   makeReq(1, 0, 8, 1, false),
                                   makeReq(2, 0, 16, 1, false)};
    runRequests(s, dev, reqs);
    EXPECT_EQ(dev.stats().queueDepthAtArrival.count(), 3u);
    EXPECT_DOUBLE_EQ(dev.stats().queueDepthAtArrival.mean(), 1.0);
    EXPECT_DOUBLE_EQ(dev.stats().queueDepthAtArrival.max(), 2.0);
}

TEST(EmmcDevice, UtilizationReflectsBusyTime)
{
    sim::Simulator s;
    EmmcDevice dev(s, tinyConfig(), tinyDistributor());
    auto done = runRequests(s, dev, {makeReq(0, 0, 0, 1, false)});
    sim::Time busy = done[0].finish - done[0].serviceStart;
    s.runUntil(2 * busy);
    EXPECT_NEAR(dev.utilization(s.now()), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(dev.utilization(0), 0.0);
}

TEST(EmmcDevice, HslcWritesLandInSlcPool)
{
    // An HSLC-style device: small (1-unit) writes must use the
    // SLC-mode 4KB pool, pairs the 8KB pool.
    sim::Simulator s;
    EmmcConfig cfg;
    cfg.name = "HSLC";
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.pagesPerBlock = 8;
    cfg.geometry.pools = {flash::PoolConfig{4096, 16, 4},
                          flash::PoolConfig{8192, 16}};
    cfg.timing.pools = {flash::Timing::page4kSlcMode(),
                        flash::Timing::page8k()};
    EmmcDevice dev(s, cfg,
                   std::make_unique<core::HpsDistributor>(0, 1));

    auto done = runRequests(
        s, dev,
        {makeReq(0, 0, 0, 1, true),                        // 4KB
         makeReq(1, sim::milliseconds(50), 8, 5, true)});  // 20KB
    ASSERT_EQ(done.size(), 2u);
    // 1-unit write + the 20KB tail unit = two SLC-pool programs.
    EXPECT_EQ(dev.array().stats(0).programs, 2u);
    // The 20KB body = two 8KB-pool programs.
    EXPECT_EQ(dev.array().stats(1).programs, 2u);
    // SLC-mode service is faster than the same write on MLC timing.
    sim::Time slc_service = done[0].finish - done[0].serviceStart;
    sim::Time expect = cfg.commandOverhead +
                       cfg.timing.pageCmdOverhead +
                       cfg.timing.transferTime(4096) +
                       flash::Timing::page4kSlcMode().programLatency;
    EXPECT_EQ(slc_service, expect);
}

TEST(EmmcDevice, SlcPoolHasHalfThePages)
{
    sim::Simulator s;
    EmmcConfig cfg = makeHpsSlcConfig();
    EXPECT_EQ(cfg.geometry.poolPagesPerBlock(kHps4kPool),
              cfg.geometry.poolPagesPerBlock(kHps8kPool) / 2);
}
