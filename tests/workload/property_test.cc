/**
 * @file
 * Property suites over generated workloads: serialization round-trips,
 * distribution sanity, combo-merge conservation, and scale linearity,
 * swept across applications and seeds.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/distributions.hh"
#include "analysis/size_stats.hh"
#include "workload/combo.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::workload;

namespace {

trace::Trace
gen(const std::string &name, double scale, std::uint64_t seed)
{
    const AppProfile *p = findProfile(name);
    EXPECT_NE(p, nullptr);
    TraceGenerator g(*p, seed);
    return g.generate(scale);
}

} // namespace

/** (app, seed) sweep. */
class TraceProperties
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    trace::Trace
    make()
    {
        return gen(std::get<0>(GetParam()), 0.1,
                   static_cast<std::uint64_t>(std::get<1>(GetParam())));
    }
};

TEST_P(TraceProperties, SerializationRoundTripsExactly)
{
    trace::Trace t = make();
    std::stringstream ss;
    t.save(ss);
    trace::Trace back = trace::Trace::load(ss);
    ASSERT_EQ(back.size(), t.size());
    EXPECT_EQ(back.name(), t.name());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].arrival, t[i].arrival);
        EXPECT_EQ(back[i].lbaSector, t[i].lbaSector);
        EXPECT_EQ(back[i].sizeBytes, t[i].sizeBytes);
        EXPECT_EQ(back[i].op, t[i].op);
    }
}

TEST_P(TraceProperties, DistributionFractionsSumToOne)
{
    trace::Trace t = make();
    for (const sim::Histogram &h :
         {analysis::sizeDistribution(t),
          analysis::interArrivalDistribution(t)}) {
        if (h.total() == 0)
            continue;
        double sum = 0.0;
        for (double f : h.fractions())
            sum += f;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST_P(TraceProperties, SizesAreAlignedAndPositive)
{
    trace::Trace t = make();
    for (const auto &r : t.records()) {
        EXPECT_GT(r.sizeBytes.value(), 0u);
        EXPECT_TRUE(units::isUnitAligned(r.sizeBytes));
        EXPECT_TRUE(units::isUnitAligned(r.lbaSector));
    }
}

TEST_P(TraceProperties, SizeStatsInternallyConsistent)
{
    trace::Trace t = make();
    analysis::SizeStats s = analysis::computeSizeStats(t);
    // write% of requests and mean sizes must reconstruct the data mix.
    double writes = s.writeReqPct / 100.0 *
                    static_cast<double>(s.requests);
    double reads = static_cast<double>(s.requests) - writes;
    double rebuilt = writes * s.aveWriteKb + reads * s.aveReadKb;
    EXPECT_NEAR(rebuilt, s.dataSizeKb, 0.01 * s.dataSizeKb + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSeeds, TraceProperties,
    ::testing::Combine(::testing::Values("Twitter", "Movie", "Booting",
                                         "CameraVideo", "Idle",
                                         "Music/FB"),
                       ::testing::Values(1, 42, 1234)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>
           &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name) {
            if (c == '/')
                c = '_';
        }
        return name + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(ComboMergeProperty, ConservesRequestsAndBytes)
{
    for (std::uint64_t seed : {1ull, 7ull}) {
        trace::Trace a = gen("Music", 0.05, seed);
        trace::Trace b = gen("WebBrowsing", 0.05, seed + 100);
        trace::Trace m = combineTraces(a, b, "Music/WB");
        EXPECT_EQ(m.size(), a.size() + b.size());
        EXPECT_EQ(m.totalBytes(), a.totalBytes() + b.totalBytes());
        EXPECT_EQ(m.writeCount(), a.writeCount() + b.writeCount());
        EXPECT_EQ(m.validate(), "");
    }
}

TEST(ScaleProperty, RequestCountScalesLinearly)
{
    const AppProfile *p = findProfile("GoogleMaps");
    TraceGenerator g1(*p, 5);
    TraceGenerator g2(*p, 5);
    trace::Trace small = g1.generate(0.05);
    trace::Trace large = g2.generate(0.20);
    EXPECT_NEAR(static_cast<double>(large.size()),
                4.0 * static_cast<double>(small.size()),
                0.01 * static_cast<double>(large.size()) + 2.0);
}

TEST(ScaleProperty, DistributionShapeIsScaleInvariant)
{
    const AppProfile *p = findProfile("Facebook");
    TraceGenerator g1(*p, 9);
    TraceGenerator g2(*p, 9);
    sim::Histogram ha =
        analysis::sizeDistribution(g1.generate(0.3));
    sim::Histogram hb =
        analysis::sizeDistribution(g2.generate(1.0));
    for (std::size_t i = 0; i < ha.bucketCount(); ++i)
        EXPECT_NEAR(ha.fractionAt(i), hb.fractionAt(i), 0.05) << i;
}
