/**
 * @file
 * Generator tests: determinism, structural validity, and statistical
 * agreement with the profile targets (write fraction, mean sizes,
 * mean inter-arrival, localities).
 */

#include <gtest/gtest.h>

#include "analysis/locality.hh"
#include "analysis/size_stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::workload;

namespace {

trace::Trace
gen(const std::string &name, double scale = 1.0, std::uint64_t seed = 1)
{
    const AppProfile *p = findProfile(name);
    EXPECT_NE(p, nullptr);
    TraceGenerator g(*p, seed);
    return g.generate(scale);
}

} // namespace

TEST(TraceGenerator, DeterministicForSameSeed)
{
    trace::Trace a = gen("Twitter", 0.05, 9);
    trace::Trace b = gen("Twitter", 0.05, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].lbaSector, b[i].lbaSector);
        EXPECT_EQ(a[i].sizeBytes, b[i].sizeBytes);
        EXPECT_EQ(a[i].op, b[i].op);
    }
}

TEST(TraceGenerator, SeedsChangeTheTrace)
{
    trace::Trace a = gen("Twitter", 0.05, 1);
    trace::Trace b = gen("Twitter", 0.05, 2);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].lbaSector != b[i].lbaSector;
    EXPECT_TRUE(differs);
}

TEST(TraceGenerator, OutputIsStructurallyValid)
{
    for (const char *name : {"Twitter", "Movie", "Booting", "FB/Msg"}) {
        trace::Trace t = gen(name, 0.1);
        EXPECT_EQ(t.validate(), "") << name;
        EXPECT_EQ(t.name(), name);
    }
}

TEST(TraceGenerator, ScaleControlsRequestCount)
{
    const AppProfile *p = findProfile("Twitter");
    TraceGenerator g(*p, 1);
    trace::Trace t = g.generate(0.1);
    EXPECT_NEAR(static_cast<double>(t.size()),
                0.1 * static_cast<double>(p->requestCount), 2.0);
}

TEST(TraceGenerator, FullScaleMatchesRequestCount)
{
    trace::Trace t = gen("Email", 1.0);
    EXPECT_EQ(t.size(), findProfile("Email")->requestCount);
}

TEST(TraceGenerator, WriteFractionMatchesProfile)
{
    trace::Trace t = gen("Twitter", 1.0);
    double frac = static_cast<double>(t.writeCount()) /
                  static_cast<double>(t.size());
    EXPECT_NEAR(frac, findProfile("Twitter")->writeFraction, 0.02);
}

TEST(TraceGenerator, MeanSizesMatchProfile)
{
    trace::Trace t = gen("Messaging", 1.0);
    analysis::SizeStats s = analysis::computeSizeStats(t);
    EXPECT_NEAR(s.aveReadKb, 23.0, 4.0);
    EXPECT_NEAR(s.aveWriteKb, 10.5, 1.5);
}

TEST(TraceGenerator, DurationMatchesProfile)
{
    const AppProfile *p = findProfile("Twitter");
    trace::Trace t = gen("Twitter", 1.0);
    double expect_s = sim::toSeconds(p->duration);
    EXPECT_NEAR(sim::toSeconds(t.duration()), expect_s, 0.2 * expect_s);
}

TEST(TraceGenerator, LocalitiesMatchProfile)
{
    const AppProfile *p = findProfile("Twitter");
    trace::Trace t = gen("Twitter", 1.0);
    analysis::LocalityResult loc = analysis::computeLocality(t);
    EXPECT_NEAR(loc.spatial, p->spatialLocality, 0.05);
    EXPECT_NEAR(loc.temporal, p->temporalLocality, 0.08);
}

TEST(TraceGenerator, AddressesStayInFootprint)
{
    const AppProfile *p = findProfile("Movie");
    trace::Trace t = gen("Movie", 0.5);
    for (const auto &r : t.records()) {
        EXPECT_LE(static_cast<std::uint64_t>(
                      units::lbaToUnitFloor(r.lbaSector).value()) +
                      r.sizeUnits(),
                  p->footprintUnits);
    }
}

TEST(TraceGenerator, SizesRespectProfileCaps)
{
    const AppProfile *p = findProfile("Messaging"); // max 128KB
    trace::Trace t = gen("Messaging", 1.0);
    (void)p;
    EXPECT_LE(t.maxRequestBytes().value(), sim::kib(128));
}

/** Parameterized sweep: every one of the 25 profiles generates a
 * valid trace whose headline statistics track its targets. */
class GeneratorAllProfiles
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorAllProfiles, StatisticsTrackProfile)
{
    const AppProfile *p = findProfile(GetParam());
    ASSERT_NE(p, nullptr);
    TraceGenerator g(*p, 17);
    // Scale long traces down for test speed, but keep enough samples.
    const double scale =
        p->requestCount > 8000 ? 0.25 : 1.0;
    trace::Trace t = g.generate(scale);

    EXPECT_EQ(t.validate(), "");
    double wf = static_cast<double>(t.writeCount()) /
                static_cast<double>(t.size());
    EXPECT_NEAR(wf, p->writeFraction, 0.04);

    analysis::LocalityResult loc = analysis::computeLocality(t);
    EXPECT_NEAR(loc.spatial, p->spatialLocality, 0.06);
    EXPECT_NEAR(loc.temporal, p->temporalLocality, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    All25, GeneratorAllProfiles,
    ::testing::Values("Idle", "CallIn", "CallOut", "Booting", "Movie",
                      "Music", "AngryBirds", "CameraVideo",
                      "GoogleMaps", "Messaging", "Twitter", "Email",
                      "Facebook", "Amazon", "YouTube", "Radio",
                      "Installing", "WebBrowsing", "Music/WB",
                      "Radio/WB", "Music/FB", "Radio/FB", "Music/Msg",
                      "Radio/Msg", "FB/Msg"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '/')
                c = '_';
        }
        return name;
    });
