/**
 * @file
 * Combo composition tests: merging and the named combo generator.
 */

#include <gtest/gtest.h>

#include "workload/combo.hh"
#include "workload/fixed.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::workload;

namespace {

trace::Trace
streamAt(std::string name, sim::Time start_gap, std::uint64_t count)
{
    FixedStreamSpec spec;
    spec.name = std::move(name);
    spec.count = count;
    spec.gap = start_gap;
    return makeFixedStream(spec);
}

} // namespace

TEST(CombineTraces, MergesByArrival)
{
    trace::Trace a = streamAt("A", 100, 3); // arrivals 0,100,200
    trace::Trace b = streamAt("B", 70, 3);  // arrivals 0,70,140
    trace::Trace m = combineTraces(a, b, "A/B");
    EXPECT_EQ(m.name(), "A/B");
    ASSERT_EQ(m.size(), 6u);
    for (std::size_t i = 1; i < m.size(); ++i)
        EXPECT_LE(m[i - 1].arrival, m[i].arrival);
    EXPECT_EQ(m.validate(), "");
}

TEST(CombineTraces, KeepsAllRequests)
{
    trace::Trace a = streamAt("A", 10, 5);
    trace::Trace b = streamAt("B", 10, 7);
    trace::Trace m = combineTraces(a, b, "A/B");
    EXPECT_EQ(m.size(), 12u);
    EXPECT_EQ(m.totalBytes(), a.totalBytes() + b.totalBytes());
}

TEST(CombineTraces, DropsReplayTimestamps)
{
    trace::Trace a = streamAt("A", 10, 2);
    a[0].serviceStart = 5;
    a[0].finish = 20;
    trace::Trace m = combineTraces(a, streamAt("B", 10, 2), "A/B");
    for (const auto &r : m.records())
        EXPECT_FALSE(r.replayed());
}

TEST(CombineTraces, EmptySideIsIdentityOnRecords)
{
    trace::Trace a = streamAt("A", 10, 4);
    trace::Trace empty("E");
    trace::Trace m = combineTraces(a, empty, "A/E");
    EXPECT_EQ(m.size(), 4u);
}

TEST(GenerateComboByMerge, ExpandsAbbreviations)
{
    trace::Trace t = generateComboByMerge("Music/WB", 1, 0.02);
    EXPECT_EQ(t.name(), "Music/WB");
    EXPECT_GT(t.size(), 0u);
    EXPECT_EQ(t.validate(), "");
}

TEST(GenerateComboByMerge, MergeHasMoreRequestsThanEitherComponent)
{
    // Over the overlapping window the merge contains both streams.
    trace::Trace t = generateComboByMerge("FB/Msg", 3, 0.05);
    const AppProfile *fb = findProfile("Facebook");
    ASSERT_NE(fb, nullptr);
    // The combo is denser than Facebook alone over the same window.
    double combo_rate = static_cast<double>(t.size()) /
                        sim::toSeconds(t.duration());
    double fb_rate = static_cast<double>(fb->requestCount) /
                     sim::toSeconds(fb->duration);
    EXPECT_GT(combo_rate, fb_rate);
}

TEST(GenerateComboByMergeDeath, RejectsBadNames)
{
    EXPECT_DEATH(generateComboByMerge("MusicWB", 1, 0.1),
                 "combo name");
    EXPECT_DEATH(generateComboByMerge("Music/Nope", 1, 0.1),
                 "unknown application");
}

TEST(FixedStream, SequentialAddressesAdvance)
{
    FixedStreamSpec spec;
    spec.sizeBytes = sim::kib(8);
    spec.count = 4;
    spec.sequential = true;
    trace::Trace t = makeFixedStream(spec);
    ASSERT_EQ(t.size(), 4u);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(t[i].lbaSector, t[i - 1].endSector());
}

TEST(FixedStream, RandomAddressesStayInRegion)
{
    FixedStreamSpec spec;
    spec.sequential = false;
    spec.count = 200;
    spec.regionUnits = 64;
    trace::Trace t = makeFixedStream(spec);
    for (const auto &r : t.records())
        EXPECT_LT(units::lbaToUnitFloor(r.lbaSector).value(), 64);
}

TEST(FixedStream, GapSpacingApplied)
{
    FixedStreamSpec spec;
    spec.count = 3;
    spec.gap = sim::milliseconds(7);
    trace::Trace t = makeFixedStream(spec);
    EXPECT_EQ(t[1].arrival - t[0].arrival, sim::milliseconds(7));
}

TEST(FixedStream, WriteFlagPropagates)
{
    FixedStreamSpec spec;
    spec.write = true;
    spec.count = 2;
    trace::Trace t = makeFixedStream(spec);
    EXPECT_TRUE(t[0].isWrite());
}
