/**
 * @file
 * Profile catalog tests: the 25 profiles exist and carry the paper's
 * published numbers; the size-distribution builder hits its targets.
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::workload;

TEST(Profiles, CatalogSizes)
{
    EXPECT_EQ(individualProfiles().size(), 18u);
    EXPECT_EQ(comboProfiles().size(), 7u);
    EXPECT_EQ(allProfiles().size(), 25u);
}

TEST(Profiles, Table1NamesPresent)
{
    for (const char *name :
         {"Idle", "CallIn", "CallOut", "Booting", "Movie", "Music",
          "AngryBirds", "CameraVideo", "GoogleMaps", "Messaging",
          "Twitter", "Email", "Facebook", "Amazon", "YouTube", "Radio",
          "Installing", "WebBrowsing"}) {
        EXPECT_NE(findProfile(name), nullptr) << name;
    }
}

TEST(Profiles, ComboNamesPresent)
{
    for (const char *name : {"Music/WB", "Radio/WB", "Music/FB",
                             "Radio/FB", "Music/Msg", "Radio/Msg",
                             "FB/Msg"}) {
        EXPECT_NE(findProfile(name), nullptr) << name;
    }
}

TEST(Profiles, UnknownNameReturnsNull)
{
    EXPECT_EQ(findProfile("Snapchat"), nullptr);
}

TEST(Profiles, Table3RequestCounts)
{
    EXPECT_EQ(findProfile("Twitter")->requestCount, 13807u);
    EXPECT_EQ(findProfile("Booting")->requestCount, 18417u);
    EXPECT_EQ(findProfile("Idle")->requestCount, 6932u);
    EXPECT_EQ(findProfile("FB/Msg")->requestCount, 15602u);
}

TEST(Profiles, Table3WriteFractions)
{
    EXPECT_NEAR(findProfile("CallIn")->writeFraction, 0.9993, 1e-9);
    EXPECT_NEAR(findProfile("Movie")->writeFraction, 0.0540, 1e-9);
    EXPECT_NEAR(findProfile("Booting")->writeFraction, 0.3307, 1e-9);
}

TEST(Profiles, Table4Durations)
{
    EXPECT_EQ(findProfile("Booting")->duration, sim::seconds(40));
    EXPECT_EQ(findProfile("Idle")->duration, sim::seconds(29363));
}

TEST(Profiles, Table4Localities)
{
    const AppProfile *p = findProfile("Twitter");
    EXPECT_NEAR(p->spatialLocality, 0.2657, 1e-9);
    EXPECT_NEAR(p->temporalLocality, 0.5290, 1e-9);
}

TEST(Profiles, MeanSizesTrackTable3)
{
    // Ave R / Ave W sizes should be reproduced by the bucket builder
    // within a few percent (Table III, KB -> units is /4).
    struct Expect
    {
        const char *name;
        double aveReadKb;
        double aveWriteKb;
    };
    for (const Expect &e :
         {Expect{"Twitter", 35.5, 10.5}, Expect{"Movie", 27.5, 17.0},
          Expect{"Messaging", 23.0, 10.5},
          Expect{"CameraVideo", 38.5, 736.5}}) {
        const AppProfile *p = findProfile(e.name);
        ASSERT_NE(p, nullptr);
        double mean_r = sizeBucketsMean(p->readSizes) * 4.0;
        double mean_w = sizeBucketsMean(p->writeSizes) * 4.0;
        EXPECT_NEAR(mean_r, e.aveReadKb, 0.15 * e.aveReadKb) << e.name;
        EXPECT_NEAR(mean_w, e.aveWriteKb, 0.15 * e.aveWriteKb)
            << e.name;
    }
}

TEST(Profiles, MeanInterArrivalMatchesArrivalRate)
{
    // Table IV: Twitter 16.13 req/s => ~62 ms mean inter-arrival.
    const AppProfile *p = findProfile("Twitter");
    EXPECT_NEAR(sim::toMilliseconds(p->meanInterArrival()), 62.0, 1.0);
}

TEST(Profiles, FootprintLargerThanMaxRequest)
{
    for (const AppProfile &p : allProfiles()) {
        std::uint64_t max_units = 0;
        for (const auto &b : p.writeSizes)
            max_units = std::max<std::uint64_t>(max_units, b.hiUnits);
        EXPECT_GT(p.footprintUnits, 2 * max_units) << p.name;
    }
}

TEST(BuildSizeBuckets, WeightsSumToOne)
{
    auto buckets = buildSizeBuckets(5.0, 256, 0.5);
    double total = 0.0;
    for (const auto &b : buckets)
        total += b.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BuildSizeBuckets, SmallFractionPinned)
{
    auto buckets = buildSizeBuckets(8.0, 1024, 0.45);
    ASSERT_FALSE(buckets.empty());
    EXPECT_EQ(buckets[0].loUnits, 1u);
    EXPECT_EQ(buckets[0].hiUnits, 1u);
    EXPECT_NEAR(buckets[0].weight, 0.45, 1e-9);
}

TEST(BuildSizeBuckets, MeanHitsTarget)
{
    for (double target : {2.0, 4.5, 10.0, 40.0, 180.0}) {
        auto buckets = buildSizeBuckets(target, 4096, 0.45);
        EXPECT_NEAR(sizeBucketsMean(buckets), target, 0.1 * target)
            << target;
    }
}

TEST(BuildSizeBuckets, RespectsMaxUnits)
{
    auto buckets = buildSizeBuckets(3.0, 32, 0.5);
    for (const auto &b : buckets)
        EXPECT_LE(b.hiUnits, 32u);
}

TEST(BuildSizeBuckets, SingleUnitDegenerate)
{
    auto buckets = buildSizeBuckets(1.0, 1, 0.5);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_DOUBLE_EQ(buckets[0].weight, 1.0);
}

TEST(BuildSizeBuckets, ReadCapAt256Kb)
{
    // Profiles cap read sizes at 64 units (Fig 3: max read 256KB).
    for (const AppProfile &p : allProfiles()) {
        for (const auto &b : p.readSizes)
            EXPECT_LE(b.hiUnits, 64u) << p.name;
    }
}
