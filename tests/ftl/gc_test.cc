/**
 * @file
 * Garbage-collection tests: blocking GC under pressure, data
 * preservation across relocation, idle GC, and wear accounting.
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"
#include "ftl/wear.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

/** One plane, one pool, 4 blocks of 4 pages: GC is easy to trigger. */
struct GcRig
{
    flash::Geometry geom;
    flash::Timing timing;
    flash::FlashArray array;
    Ftl ftl;

    GcRig()
        : geom(makeGeom()),
          timing(makeTiming()),
          array(geom, timing, true),
          ftl(array, makeCfg())
    {
    }

    static flash::Geometry
    makeGeom()
    {
        flash::Geometry g;
        g.channels = 1;
        g.chipsPerChannel = 1;
        g.diesPerChip = 1;
        g.planesPerDie = 1;
        g.pagesPerBlock = 4;
        g.pools = {flash::PoolConfig{4096, 4}};
        return g;
    }

    static flash::Timing
    makeTiming()
    {
        flash::Timing t;
        t.pools = {flash::Timing::page4k()};
        return t;
    }

    static FtlConfig
    makeCfg()
    {
        FtlConfig cfg;
        cfg.opRatio = 0.5; // 8 logical units of 16 raw
        cfg.gc.hardFreeBlocks = 1;
        cfg.gc.softFreeBlocks = 3;
        return cfg;
    }
};

} // namespace

TEST(GarbageCollector, TriggersUnderWritePressure)
{
    GcRig rig;
    sim::Time t = 0;
    // Repeatedly overwrite 8 logical units; raw space (16 pages) fills
    // and GC must reclaim stale pages.
    for (int round = 0; round < 10; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    EXPECT_GT(rig.ftl.gcStats().blockingRounds, 0u);
    EXPECT_GT(rig.ftl.gcStats().erasedBlocks, 0u);
}

TEST(GarbageCollector, DataSurvivesRelocation)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 20; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
        // After each round every logical unit must still resolve to a
        // live physical unit holding its lpn.
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn) {
            ASSERT_TRUE(rig.ftl.map().mapped(lpn));
            const MapEntry &e = rig.ftl.map().lookup(lpn);
            auto &pool = rig.array
                             .plane(static_cast<std::uint32_t>(
                                 e.planeLinear))
                             .pool(e.pool);
            ASSERT_TRUE(pool.unitValid(e.ppn, e.unit));
            ASSERT_EQ(pool.lpnAt(e.ppn, e.unit), lpn);
        }
    }
}

TEST(GarbageCollector, GcConsumesFlashTime)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 10; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    EXPECT_GT(rig.ftl.gcStats().blockingTime, 0);
}

TEST(GarbageCollector, RelocationCountsUnits)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 10; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    // Greedy victims of a cyclic overwrite pattern are mostly stale,
    // so relocation traffic stays bounded.
    const GcStats &gs = rig.ftl.gcStats();
    EXPECT_LE(gs.relocatedUnits,
              gs.erasedBlocks * 4u); // at most all pages valid
}

TEST(GarbageCollector, IdleGcRaisesFreeBlocks)
{
    GcRig rig;
    sim::Time t = 0;
    // Dirty the device: fill ~all raw space with overwrites but stop
    // before blocking GC does all the work.
    for (int round = 0; round < 3; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    auto &pool = rig.array.plane(0).pool(0);
    std::uint32_t before = pool.freeBlockCount();
    sim::Time used =
        rig.ftl.idleGc(t, t + sim::seconds(10));
    EXPECT_GT(used, 0);
    EXPECT_GT(rig.ftl.gcStats().idleSteps, 0u);
    EXPECT_GE(pool.freeBlockCount(), before);
}

TEST(GarbageCollector, IdleGcStopsAtSoftThreshold)
{
    GcRig rig;
    // Brand-new device: all blocks free, nothing to collect.
    sim::Time used = rig.ftl.idleGc(0, sim::seconds(1));
    EXPECT_EQ(used, 0);
    EXPECT_EQ(rig.ftl.gcStats().idleSteps, 0u);
}

TEST(GarbageCollector, WearStaysBalanced)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 50; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    // Simple wear leveling (min-erase free-block pick) keeps the
    // erase spread small under uniform churn.
    EXPECT_LE(rig.array.plane(0).pool(0).eraseSpread(), 3u);
}

TEST(GarbageCollectorDeath, ThresholdsValidated)
{
    GcRig rig;
    flash::FlashArray arr(GcRig::makeGeom(), GcRig::makeTiming(), true);
    PageMap map(8);
    BadBlockManager bbm(1, 1, BbmConfig{});
    MetaJournal journal(map, JournalConfig{});
    GcConfig bad;
    bad.hardFreeBlocks = 0;
    EXPECT_DEATH(GarbageCollector(arr, map, bad, bbm, journal),
                 "reserved free block");
    GcConfig inverted;
    inverted.hardFreeBlocks = 4;
    inverted.softFreeBlocks = 2;
    EXPECT_DEATH(GarbageCollector(arr, map, inverted, bbm, journal),
                 "soft GC threshold");
}

TEST(GcVictimPolicy, CostBenefitPrefersOldBlocks)
{
    // Two full blocks with equal valid counts; the older one (written
    // first) must be the cost-benefit victim, while greedy would tie.
    flash::Geometry g = GcRig::makeGeom();
    flash::Timing tm = GcRig::makeTiming();
    flash::FlashArray arr(g, tm, true);
    PageMap map(16);
    GcConfig cfg;
    cfg.hardFreeBlocks = 1;
    cfg.softFreeBlocks = 4;
    cfg.victimPolicy = GcVictimPolicy::CostBenefit;
    BadBlockManager bbm(1, 1, BbmConfig{});
    MetaJournal journal(map, JournalConfig{});
    GarbageCollector gc(arr, map, cfg, bbm, journal);

    auto &bp = arr.plane(0).pool(0);
    // Fill block A (old) and block B (young), then open block C so
    // neither candidate is the active block; one valid unit each.
    std::vector<flash::Ppn> pages;
    for (int i = 0; i < 9; ++i)
        pages.push_back(bp.allocatePage());
    auto set = [&](flash::Ppn ppn, flash::Lpn lpn) {
        bp.setUnit(ppn, 0, lpn);
        MapEntry e;
        e.planeLinear = 0;
        e.pool = 0;
        e.ppn = ppn;
        e.unit = 0;
        map.set(lpn, e);
    };
    set(pages[0], flash::Lpn{0}); // survives in old block A (block 0)
    set(pages[4], flash::Lpn{1}); // survives in young block B (block 1)
    // Trigger one collection round via idleRound.
    bool did = false;
    gc.idleRound(0, did);
    EXPECT_TRUE(did);
    // Block 0 (old) must have been erased; its survivor relocated.
    EXPECT_EQ(bp.writtenPages(flash::BlockId{0}), 0u);
    EXPECT_TRUE(map.mapped(flash::Lpn{0}));
    EXPECT_TRUE(map.mapped(flash::Lpn{1}));
}

TEST(GcVictimPolicy, GreedyPrefersEmptierBlock)
{
    flash::Geometry g = GcRig::makeGeom();
    flash::Timing tm = GcRig::makeTiming();
    flash::FlashArray arr(g, tm, true);
    PageMap map(16);
    GcConfig cfg;
    cfg.hardFreeBlocks = 1;
    cfg.softFreeBlocks = 4;
    BadBlockManager bbm(1, 1, BbmConfig{});
    MetaJournal journal(map, JournalConfig{});
    GarbageCollector gc(arr, map, cfg, bbm, journal);

    auto &bp = arr.plane(0).pool(0);
    std::vector<flash::Ppn> pages;
    for (int i = 0; i < 9; ++i)
        pages.push_back(bp.allocatePage());
    auto set = [&](flash::Ppn ppn, flash::Lpn lpn) {
        bp.setUnit(ppn, 0, lpn);
        MapEntry e;
        e.planeLinear = 0;
        e.pool = 0;
        e.ppn = ppn;
        e.unit = 0;
        map.set(lpn, e);
    };
    // Block 0 keeps 3 valid units, block 1 keeps 1.
    set(pages[0], flash::Lpn{0});
    set(pages[1], flash::Lpn{1});
    set(pages[2], flash::Lpn{2});
    set(pages[4], flash::Lpn{3});
    bool did = false;
    gc.idleRound(0, did);
    EXPECT_TRUE(did);
    // Greedy erases block 1 (fewest valid units).
    EXPECT_EQ(bp.writtenPages(flash::BlockId{1}), 0u);
    EXPECT_GT(bp.writtenPages(flash::BlockId{0}), 0u);
}

TEST(Wear, ReportAggregatesPools)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 10; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    WearReport rep = computeWear(rig.array);
    EXPECT_EQ(rep.totalErases, rig.ftl.gcStats().erasedBlocks);
    EXPECT_GE(rep.maxEraseCount, rep.minEraseCount);
    EXPECT_GT(rep.meanEraseCount, 0.0);
    EXPECT_GT(rep.bytesProgrammed, 0u);
}

TEST(Wear, WriteAmplificationAtLeastOne)
{
    GcRig rig;
    sim::Time t = 0;
    for (int round = 0; round < 10; ++round) {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = rig.ftl.writeGroup(0, {lpn}, t).done;
    }
    double wa = writeAmplification(rig.array, rig.ftl);
    // GC relocation means strictly more flash programs than host data.
    EXPECT_GE(wa, 1.0);
}

TEST(Wear, FreshDeviceHasZeroAmplification)
{
    GcRig rig;
    EXPECT_DOUBLE_EQ(writeAmplification(rig.array, rig.ftl), 0.0);
    WearReport rep = computeWear(rig.array);
    EXPECT_EQ(rep.totalErases, 0u);
    EXPECT_EQ(rep.minEraseCount, 0u);
}
