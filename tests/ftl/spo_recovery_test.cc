/**
 * @file
 * Sudden-power-off recovery tests on a tiny FTL: acknowledged writes
 * survive, torn in-flight programs roll back, newest-copy-wins
 * ordering via OOB sequence stamps, trim durability, and the
 * recovery-time cost model (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.hh"
#include "ftl/ftl.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

constexpr flash::Lpn
L(std::int64_t v)
{
    return flash::Lpn{v};
}

flash::Geometry
tinyGeom()
{
    flash::Geometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.diesPerChip = 1;
    g.planesPerDie = 2;
    g.pagesPerBlock = 4;
    g.pools = {{4096, 8}};
    return g;
}

flash::Timing
tinyTiming()
{
    flash::Timing t;
    t.pools = {flash::Timing::page4k()};
    return t;
}

struct SpoFixture
{
    flash::Geometry geom = tinyGeom();
    flash::Timing timing = tinyTiming();
    flash::FlashArray array;
    Ftl ftl;

    SpoFixture() : array(geom, timing, true), ftl(array, makeCfg()) {}

    static FtlConfig
    makeCfg()
    {
        FtlConfig cfg;
        cfg.opRatio = 0.25;
        cfg.gc.hardFreeBlocks = 1;
        cfg.gc.softFreeBlocks = 2;
        return cfg;
    }

    /** Write one unit and return the program's completion time. */
    sim::Time
    writeUnit(std::int64_t lpn, sim::Time earliest = 0)
    {
        WriteResult r = ftl.writeGroup(0, {L(lpn)}, earliest);
        EXPECT_TRUE(r.accepted);
        return r.done;
    }

    /** Post-recovery invariants must all hold. */
    void
    expectCheckersClean()
    {
        auto run = [&](const char *name, auto checker) {
            check::CheckContext ctx(name);
            checker(ctx);
            EXPECT_EQ(ctx.failures(), 0u)
                << name << ": "
                << (ctx.violations().empty() ? std::string("(no detail)")
                                             : ctx.violations().front());
        };
        run("mapping-bijection", [&](check::CheckContext &c) {
            check::checkMappingBijection(ftl, c);
        });
        run("unit-conservation", [&](check::CheckContext &c) {
            check::checkUnitConservation(ftl, c);
        });
        run("journal-accounting", [&](check::CheckContext &c) {
            check::checkJournalAccounting(ftl, c);
        });
        run("pageseq-consistency", [&](check::CheckContext &c) {
            check::checkPageSeqConsistency(ftl, c);
        });
        run("array-accounting", [&](check::CheckContext &c) {
            check::checkArrayAccounting(array, c);
        });
    }
};

} // namespace

TEST(SpoRecovery, AcknowledgedWritesSurviveTheCrash)
{
    SpoFixture f;
    std::vector<MapEntry> before;
    for (std::int64_t l = 0; l < 6; ++l)
        f.writeUnit(l);
    const sim::Time crash = 1'000'000'000; // all programs long done
    for (std::int64_t l = 0; l < 6; ++l)
        before.push_back(f.ftl.map().lookup(L(l)));

    RecoveryReport rep = f.ftl.powerFailAndRecover(crash);

    EXPECT_EQ(rep.tornPages, 0u);
    EXPECT_EQ(rep.recoveredUnits, 6u);
    for (std::int64_t l = 0; l < 6; ++l) {
        ASSERT_TRUE(f.ftl.map().mapped(L(l))) << "lpn " << l;
        EXPECT_EQ(f.ftl.map().lookup(L(l)), before[static_cast<
            std::size_t>(l)]) << "lpn " << l;
    }
    f.expectCheckersClean();
}

TEST(SpoRecovery, InFlightProgramIsTornAndRolledBack)
{
    SpoFixture f;
    const sim::Time done0 = f.writeUnit(0);
    // Second write issued at t=done0 completes later; crash before it.
    const sim::Time done1 = f.writeUnit(1, done0);
    ASSERT_GT(done1, done0);
    const sim::Time crash = done1 - 1;

    RecoveryReport rep = f.ftl.powerFailAndRecover(crash);

    EXPECT_EQ(rep.tornPages, 1u);
    // The unacknowledged write is gone; the acknowledged one is not.
    EXPECT_TRUE(f.ftl.map().mapped(L(0)));
    EXPECT_FALSE(f.ftl.map().mapped(L(1)));
    f.expectCheckersClean();
}

TEST(SpoRecovery, NewestCopyWinsByOobSequence)
{
    SpoFixture f;
    f.writeUnit(7);
    const MapEntry old_entry = f.ftl.map().lookup(L(7));
    f.writeUnit(7); // overwrite: older copy goes stale
    const MapEntry new_entry = f.ftl.map().lookup(L(7));
    ASSERT_NE(old_entry, new_entry);

    RecoveryReport rep = f.ftl.powerFailAndRecover(1'000'000'000);

    EXPECT_GE(rep.staleCopies, 1u);
    EXPECT_EQ(f.ftl.map().lookup(L(7)), new_entry);
    f.expectCheckersClean();
}

TEST(SpoRecovery, UnflushedTrimLegallyResurrects)
{
    SpoFixture f;
    f.writeUnit(3);
    f.ftl.flushBarrier();
    f.ftl.trim(L(3), 1);
    EXPECT_FALSE(f.ftl.map().mapped(L(3)));

    RecoveryReport rep = f.ftl.powerFailAndRecover(1'000'000'000);

    // The trim never reached flash: the data comes back.
    EXPECT_EQ(rep.droppedTrims, 1u);
    EXPECT_TRUE(f.ftl.map().mapped(L(3)));
    f.expectCheckersClean();
}

TEST(SpoRecovery, FlushedTrimHoldsAcrossTheCrash)
{
    SpoFixture f;
    f.writeUnit(3);
    f.ftl.trim(L(3), 1);
    f.ftl.flushBarrier();

    RecoveryReport rep = f.ftl.powerFailAndRecover(1'000'000'000);

    EXPECT_EQ(rep.droppedTrims, 0u);
    EXPECT_GE(rep.trimmedWinners, 1u);
    EXPECT_FALSE(f.ftl.map().mapped(L(3)));
    f.expectCheckersClean();
}

TEST(SpoRecovery, InterruptedEraseIsReRun)
{
    SpoFixture f;
    // Enough overwrites to trigger GC erases on the tiny device.
    sim::Time t = 0;
    for (int round = 0; round < 8; ++round)
        for (std::int64_t l = 0; l < 8; ++l)
            t = f.writeUnit(l, t);
    const sim::Time last_erase = f.ftl.journal().lastEraseDone();
    ASSERT_GT(last_erase, 0) << "workload never triggered an erase";

    RecoveryReport rep = f.ftl.powerFailAndRecover(last_erase - 1);

    EXPECT_EQ(rep.reErasedBlocks, 1u);
    EXPECT_EQ(rep.reEraseTime, f.array.timing().eraseLatency);
    f.expectCheckersClean();
}

TEST(SpoRecovery, CostModelSumsItsComponents)
{
    SpoFixture f;
    for (std::int64_t l = 0; l < 5; ++l)
        f.writeUnit(l);

    RecoveryReport rep = f.ftl.powerFailAndRecover(1'000'000'000);

    EXPECT_GT(rep.checkpointPagesRead, 0u);
    EXPECT_GT(rep.checkpointReadTime, 0);
    EXPECT_GT(rep.checkpointWriteTime, 0);
    EXPECT_EQ(rep.totalTime, rep.checkpointReadTime +
                                 rep.journalReplayTime + rep.scanTime +
                                 rep.reEraseTime +
                                 rep.checkpointWriteTime);
}

TEST(SpoRecovery, SecondCrashAfterRecoveryIsStillConsistent)
{
    SpoFixture f;
    for (std::int64_t l = 0; l < 6; ++l)
        f.writeUnit(l);
    f.ftl.powerFailAndRecover(1'000'000'000);
    for (std::int64_t l = 2; l < 4; ++l)
        f.writeUnit(l);

    RecoveryReport rep = f.ftl.powerFailAndRecover(2'000'000'000);

    EXPECT_EQ(rep.recoveredUnits, 6u);
    for (std::int64_t l = 0; l < 6; ++l)
        EXPECT_TRUE(f.ftl.map().mapped(L(l))) << "lpn " << l;
    f.expectCheckersClean();
}
