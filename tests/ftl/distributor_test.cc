/**
 * @file
 * Unit and property tests for the write distributors, including the
 * HPS splitter's defining examples from the paper.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/hps.hh"
#include "ftl/distributor.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

std::vector<PageGroup>
split(const RequestDistributor &d, std::int64_t first,
      std::uint32_t n)
{
    std::vector<PageGroup> out;
    d.splitWrite(flash::Lpn{first}, n, out);
    return out;
}

/** Total units across all groups. */
std::uint32_t
totalUnits(const std::vector<PageGroup> &groups)
{
    std::uint32_t n = 0;
    for (const auto &g : groups)
        n += static_cast<std::uint32_t>(g.lpns.size());
    return n;
}

/** Check the groups cover exactly [first, first+n) in order. */
void
expectCovers(const std::vector<PageGroup> &groups, std::int64_t first,
             std::uint32_t n)
{
    flash::Lpn expect{first};
    for (const auto &g : groups) {
        for (flash::Lpn lpn : g.lpns)
            EXPECT_EQ(lpn, expect++);
    }
    EXPECT_EQ(expect, flash::Lpn{first} + n);
}

} // namespace

TEST(SinglePoolDistributor, OneUnitPerPage)
{
    SinglePoolDistributor d(0, 1, "4PS");
    auto groups = split(d, 100, 5);
    ASSERT_EQ(groups.size(), 5u);
    for (const auto &g : groups) {
        EXPECT_EQ(g.pool, 0u);
        EXPECT_EQ(g.lpns.size(), 1u);
    }
    expectCovers(groups, 100, 5);
}

TEST(SinglePoolDistributor, TwoUnitPagesWithOddTail)
{
    SinglePoolDistributor d(0, 2, "8PS");
    auto groups = split(d, 0, 5);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].lpns.size(), 2u);
    EXPECT_EQ(groups[1].lpns.size(), 2u);
    EXPECT_EQ(groups[2].lpns.size(), 1u); // padded physical page
    expectCovers(groups, 0, 5);
}

TEST(SinglePoolDistributor, NameIsLabel)
{
    SinglePoolDistributor d(3, 2, "8PS");
    EXPECT_EQ(d.name(), "8PS");
    auto groups = split(d, 0, 2);
    EXPECT_EQ(groups[0].pool, 3u);
}

TEST(HpsDistributor, PaperExample20KB)
{
    // 20KB = 5 units => two 8KB sub-requests + one 4KB sub-request.
    core::HpsDistributor d(0, 1);
    auto groups = split(d, 0, 5);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].pool, 1u);
    EXPECT_EQ(groups[0].lpns.size(), 2u);
    EXPECT_EQ(groups[1].pool, 1u);
    EXPECT_EQ(groups[1].lpns.size(), 2u);
    EXPECT_EQ(groups[2].pool, 0u);
    EXPECT_EQ(groups[2].lpns.size(), 1u);
    expectCovers(groups, 0, 5);
}

TEST(HpsDistributor, SingleUnitGoesTo4kPool)
{
    core::HpsDistributor d(0, 1);
    auto groups = split(d, 42, 1);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].pool, 0u);
    EXPECT_EQ(groups[0].lpns, (std::vector<flash::Lpn>{flash::Lpn{42}}));
}

TEST(HpsDistributor, EvenRequestUsesOnly8kPool)
{
    core::HpsDistributor d(0, 1);
    auto groups = split(d, 10, 8);
    ASSERT_EQ(groups.size(), 4u);
    for (const auto &g : groups) {
        EXPECT_EQ(g.pool, 1u);
        EXPECT_EQ(g.lpns.size(), 2u);
    }
    expectCovers(groups, 10, 8);
}

TEST(HpsDistributor, NameIsHps)
{
    core::HpsDistributor d(0, 1);
    EXPECT_EQ(d.name(), "HPS");
}

/**
 * Property sweep over request sizes: every distributor covers the
 * exact unit range, and the flash consumption matches the analytic
 * padding model (4PS/HPS none, 8PS ceil-to-8KB).
 */
class DistributorSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DistributorSweep, CoverageAndConsumption)
{
    const std::uint32_t n = GetParam();

    SinglePoolDistributor d4(0, 1, "4PS");
    SinglePoolDistributor d8(0, 2, "8PS");
    core::HpsDistributor dh(0, 1);

    auto g4 = split(d4, 1000, n);
    auto g8 = split(d8, 1000, n);
    auto gh = split(dh, 1000, n);

    expectCovers(g4, 1000, n);
    expectCovers(g8, 1000, n);
    expectCovers(gh, 1000, n);
    EXPECT_EQ(totalUnits(g4), n);
    EXPECT_EQ(totalUnits(g8), n);
    EXPECT_EQ(totalUnits(gh), n);

    // Consumption: pages * page size.
    auto consumed = [](const std::vector<PageGroup> &gs,
                       std::uint32_t upp4, std::uint32_t upp8) {
        std::uint64_t bytes = 0;
        for (const auto &g : gs)
            bytes += (g.pool == 1 ? upp8 : upp4) * 4096ull;
        return bytes;
    };
    // 4PS: one-unit pages in pool 0.
    EXPECT_EQ(consumed(g4, 1, 2), n * 4096ull);
    // 8PS: all groups in pool 0 with 2-unit pages.
    std::uint64_t bytes8 = 0;
    for (const auto &g : g8) {
        (void)g;
        bytes8 += 8192;
    }
    EXPECT_EQ(bytes8, ((n + 1) / 2) * 8192ull);
    // HPS: pairs in pool 1 (8KB each) + optional 4KB tail = exactly n
    // units of flash.
    EXPECT_EQ(consumed(gh, 1, 2), n * 4096ull);
}

INSTANTIATE_TEST_SUITE_P(RequestSizes, DistributorSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u,
                                           16u, 33u, 64u, 127u, 1024u));
