/**
 * @file
 * Randomized consistency tests: drive the FTL with random write /
 * read / trim traffic against a simple reference model and check that
 * the mapping, pool validity, and conservation invariants hold after
 * every step — including through garbage collection and across all
 * three scheme distributors.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/hps.hh"
#include "ftl/ftl.hh"
#include "sim/random.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

struct FuzzRig
{
    flash::Geometry geom;
    flash::Timing timing;
    flash::FlashArray array;
    Ftl ftl;

    explicit FuzzRig(bool hybrid)
        : geom(makeGeom(hybrid)),
          timing(makeTiming(hybrid)),
          array(geom, timing, true),
          ftl(array, makeCfg())
    {
    }

    static flash::Geometry
    makeGeom(bool hybrid)
    {
        flash::Geometry g;
        g.channels = 2;
        g.chipsPerChannel = 1;
        g.diesPerChip = 1;
        g.planesPerDie = 2;
        g.pagesPerBlock = 8;
        if (hybrid) {
            // The 8KB pool takes the bulk of random-size writes
            // (unit pairs), so it gets the larger share.
            g.pools = {flash::PoolConfig{4096, 8},
                       flash::PoolConfig{8192, 8}};
        } else {
            g.pools = {flash::PoolConfig{4096, 12}};
        }
        return g;
    }

    static flash::Timing
    makeTiming(bool hybrid)
    {
        flash::Timing t;
        t.pools = {flash::Timing::page4k()};
        if (hybrid)
            t.pools.push_back(flash::Timing::page8k());
        return t;
    }

    static FtlConfig
    makeCfg()
    {
        FtlConfig cfg;
        cfg.opRatio = 0.45; // small logical space: heavy GC churn
        cfg.gc.hardFreeBlocks = 1;
        cfg.gc.softFreeBlocks = 2;
        return cfg;
    }

    /** Full cross-check of map vs pool state vs reference set. */
    void
    checkConsistency(const std::unordered_set<flash::Lpn> &live) const
    {
        // Every reference-live lpn maps to a live physical unit that
        // stores exactly this lpn.
        for (flash::Lpn lpn : live) {
            ASSERT_TRUE(ftl.map().mapped(lpn)) << lpn;
            const MapEntry &e = ftl.map().lookup(lpn);
            const auto &bp =
                array
                    .plane(static_cast<std::uint32_t>(e.planeLinear))
                    .pool(e.pool);
            ASSERT_TRUE(bp.unitValid(e.ppn, e.unit)) << lpn;
            ASSERT_EQ(bp.lpnAt(e.ppn, e.unit), lpn);
        }
        // Mapped count agrees with the reference set.
        ASSERT_EQ(ftl.map().mappedCount(), live.size());

        // Total valid units across pools agrees too (no leaks).
        std::uint64_t valid = 0;
        for (std::uint32_t p = 0; p < geom.planeCount(); ++p) {
            for (std::size_t k = 0; k < geom.pools.size(); ++k)
                valid += array.plane(p).pool(k).validUnitCount();
        }
        ASSERT_EQ(valid, live.size());
    }
};

} // namespace

/** (scheme-hybrid?, seed) parameter. */
class FtlFuzz : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(FtlFuzz, RandomTrafficKeepsInvariants)
{
    const bool hybrid = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());

    FuzzRig rig(hybrid);
    core::HpsDistributor hps_dist(0, 1);
    SinglePoolDistributor flat_dist(0, 1, "4PS");
    const RequestDistributor &dist =
        hybrid ? static_cast<const RequestDistributor &>(hps_dist)
               : static_cast<const RequestDistributor &>(flat_dist);

    const auto logical =
        static_cast<std::int64_t>(rig.ftl.logicalUnits());
    ASSERT_GT(logical, 8);

    sim::Rng rng(static_cast<std::uint64_t>(seed));
    std::unordered_set<flash::Lpn> live;
    sim::Time t = 0;

    std::vector<PageGroup> groups;
    for (int step = 0; step < 800; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 9));
        const std::uint32_t n =
            static_cast<std::uint32_t>(rng.uniformInt(1, 8));
        const flash::Lpn start{
            rng.uniformInt(0, logical - static_cast<std::int64_t>(n))};

        if (op < 6) { // write
            groups.clear();
            dist.splitWrite(start, n, groups);
            for (const PageGroup &g : groups) {
                t = rig.ftl.writeGroup(g.pool, g.lpns, t).done;
                for (flash::Lpn lpn : g.lpns)
                    live.insert(lpn);
            }
        } else if (op < 9) { // read (mapped or not)
            sim::Time done = rig.ftl.readUnits(start, n, t).done;
            ASSERT_GE(done, t);
        } else { // trim
            rig.ftl.trim(start, n);
            for (std::uint32_t i = 0; i < n; ++i)
                live.erase(start + i);
        }

        if (step % 50 == 0)
            rig.checkConsistency(live);
    }
    rig.checkConsistency(live);
    // GC must actually have run during the churn for the test to mean
    // anything (logical space is ~45% of raw).
    EXPECT_GT(rig.ftl.gcStats().erasedBlocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FtlFuzz,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)),
    [](const ::testing::TestParamInfo<std::tuple<bool, int>> &info) {
        return std::string(std::get<0>(info.param) ? "Hybrid" : "Flat") +
               "Seed" + std::to_string(std::get<1>(info.param));
    });
