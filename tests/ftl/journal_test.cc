/**
 * @file
 * MetaJournal protocol tests: sequence accounting, page-flush and
 * barrier semantics, trim durability across power loss, automatic
 * checkpoints, and snapshot round-trips (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include "core/binio.hh"
#include "ftl/journal.hh"
#include "ftl/mapping.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

MapEntry
entryAt(std::int32_t plane, std::uint64_t ppn)
{
    MapEntry e;
    e.planeLinear = plane;
    e.pool = 0;
    e.unit = 0;
    e.ppn = flash::Ppn{ppn};
    return e;
}

JournalConfig
tinyJournal(std::uint32_t records_per_page = 4,
            std::uint32_t checkpoint_every = 1u << 16)
{
    JournalConfig cfg;
    cfg.recordsPerPage = records_per_page;
    cfg.checkpointEveryRecords = checkpoint_every;
    return cfg;
}

} // namespace

TEST(MetaJournal, SequenceNumbersAreMonotonePerRecord)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal());
    EXPECT_EQ(j.seq(), 0u);
    EXPECT_EQ(j.recordWrite(flash::Lpn{0}, entryAt(0, 1)), 1u);
    EXPECT_EQ(j.recordRelocation(flash::Lpn{0}, entryAt(0, 2)), 2u);
    EXPECT_EQ(j.recordTrim(flash::Lpn{0}), 3u);
    EXPECT_EQ(j.seq(), 3u);
    EXPECT_EQ(j.stats().writeRecords, 1u);
    EXPECT_EQ(j.stats().relocRecords, 1u);
    EXPECT_EQ(j.stats().trimRecords, 1u);
}

TEST(MetaJournal, RecordsMutateTheMapThroughTheGateway)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal());
    j.recordWrite(flash::Lpn{5}, entryAt(0, 7));
    ASSERT_TRUE(map.mapped(flash::Lpn{5}));
    EXPECT_EQ(map.lookup(flash::Lpn{5}).ppn, flash::Ppn{7});
    j.recordRelocation(flash::Lpn{5}, entryAt(1, 9));
    EXPECT_EQ(map.lookup(flash::Lpn{5}).planeLinear, 1);
    j.recordTrim(flash::Lpn{5});
    EXPECT_FALSE(map.mapped(flash::Lpn{5}));
}

TEST(MetaJournal, PageFlushMakesRecordsDurable)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(4));
    for (std::int64_t i = 0; i < 3; ++i)
        j.recordWrite(flash::Lpn{i}, entryAt(0, i));
    // Three records buffered in the open page: nothing durable yet.
    EXPECT_EQ(j.durableSeq(), 0u);
    EXPECT_EQ(j.openPageRecords(), 3u);
    EXPECT_EQ(j.stats().pagesFlushed, 0u);

    j.recordWrite(flash::Lpn{3}, entryAt(0, 3));
    // Fourth record fills the page; everything reaches flash.
    EXPECT_EQ(j.durableSeq(), 4u);
    EXPECT_EQ(j.openPageRecords(), 0u);
    EXPECT_EQ(j.stats().pagesFlushed, 1u);
    EXPECT_EQ(j.pagesSinceCheckpoint(), 1u);
}

TEST(MetaJournal, FlushBarrierForcesThePartialPageOut)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(8));
    j.recordWrite(flash::Lpn{0}, entryAt(0, 0));
    EXPECT_LT(j.durableSeq(), j.seq());
    j.flushBarrier();
    EXPECT_EQ(j.durableSeq(), j.seq());
    EXPECT_EQ(j.openPageRecords(), 0u);
    EXPECT_EQ(j.stats().barrierFlushes, 1u);
    // An empty barrier is free: no phantom page flush.
    j.flushBarrier();
    EXPECT_EQ(j.stats().barrierFlushes, 1u);
}

TEST(MetaJournal, UnflushedTrimIsForgottenAtPowerLoss)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(8));
    j.recordWrite(flash::Lpn{1}, entryAt(0, 1));
    j.flushBarrier();
    j.recordTrim(flash::Lpn{1});
    // The trim sits in the open page: legal to forget after a crash.
    EXPECT_GT(j.durableTrimSeq(flash::Lpn{1}), j.durableSeq());
    EXPECT_EQ(j.dropVolatileTrims(), 1u);
    EXPECT_EQ(j.durableTrimSeq(flash::Lpn{1}), 0u);
    EXPECT_EQ(j.stats().droppedTrims, 1u);
}

TEST(MetaJournal, FlushedTrimSurvivesPowerLoss)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(8));
    j.recordWrite(flash::Lpn{1}, entryAt(0, 1));
    j.recordTrim(flash::Lpn{1});
    j.flushBarrier();
    const std::uint64_t trim_seq = j.durableTrimSeq(flash::Lpn{1});
    EXPECT_GT(trim_seq, 0u);
    EXPECT_EQ(j.dropVolatileTrims(), 0u);
    EXPECT_EQ(j.durableTrimSeq(flash::Lpn{1}), trim_seq);
}

TEST(MetaJournal, CheckpointTruncatesTheJournal)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(2));
    for (std::int64_t i = 0; i < 6; ++i)
        j.recordWrite(flash::Lpn{i}, entryAt(0, i));
    EXPECT_EQ(j.pagesSinceCheckpoint(), 3u);
    j.checkpoint();
    EXPECT_EQ(j.pagesSinceCheckpoint(), 0u);
    EXPECT_EQ(j.durableSeq(), j.seq());
    EXPECT_EQ(j.stats().checkpoints, 1u);
    // 64 units at 2 records/page -> 32 checkpoint pages.
    EXPECT_EQ(j.checkpointPages(), 32u);
}

TEST(MetaJournal, AutomaticCheckpointAfterConfiguredRecords)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(2, 4));
    for (std::int64_t i = 0; i < 8; ++i)
        j.recordWrite(flash::Lpn{i}, entryAt(0, i));
    EXPECT_EQ(j.stats().checkpoints, 2u);
    EXPECT_EQ(j.pagesSinceCheckpoint(), 0u);
}

TEST(MetaJournal, RetireRecordIsImmediatelyDurable)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(64));
    j.recordWrite(flash::Lpn{0}, entryAt(0, 0));
    j.recordRetire();
    // Spare accounting must never roll back across a crash.
    EXPECT_EQ(j.durableSeq(), j.seq());
    EXPECT_EQ(j.stats().retireRecords, 1u);
}

TEST(MetaJournal, RecoveryHelpersRebuildTheMap)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal());
    j.recordWrite(flash::Lpn{3}, entryAt(0, 3));
    j.resetMapForRecovery();
    EXPECT_EQ(map.mappedCount(), 0u);
    j.installRecovered(flash::Lpn{3}, entryAt(2, 11));
    EXPECT_EQ(map.lookup(flash::Lpn{3}).planeLinear, 2);
    EXPECT_EQ(map.mappedCount(), 1u);
}

TEST(MetaJournal, SnapshotRoundTripPreservesEverything)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal(4));
    for (std::int64_t i = 0; i < 7; ++i)
        j.recordWrite(flash::Lpn{i}, entryAt(0, i));
    j.recordTrim(flash::Lpn{2});
    j.recordErase(12345);

    core::BinWriter w;
    j.save(w);
    const std::string image = w.data();

    PageMap map2(64);
    MetaJournal k(map2, tinyJournal(4));
    core::BinReader r(image);
    k.load(r);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(k.seq(), j.seq());
    EXPECT_EQ(k.durableSeq(), j.durableSeq());
    EXPECT_EQ(k.openPageRecords(), j.openPageRecords());
    EXPECT_EQ(k.pagesSinceCheckpoint(), j.pagesSinceCheckpoint());
    EXPECT_EQ(k.checkpointPages(), j.checkpointPages());
    EXPECT_EQ(k.lastEraseDone(), j.lastEraseDone());
    EXPECT_EQ(k.durableTrimSeq(flash::Lpn{2}),
              j.durableTrimSeq(flash::Lpn{2}));
    EXPECT_EQ(k.stats().pagesFlushed, j.stats().pagesFlushed);
}

TEST(MetaJournal, LoadRejectsWrongSizedTrimTable)
{
    PageMap map(64);
    MetaJournal j(map, tinyJournal());
    j.recordWrite(flash::Lpn{0}, entryAt(0, 0));
    j.recordTrim(flash::Lpn{0});
    core::BinWriter w;
    j.save(w);

    PageMap smaller(32);
    MetaJournal k(smaller, tinyJournal());
    core::BinReader r(w.data());
    k.load(r);
    EXPECT_FALSE(r.ok());
}
