/**
 * @file
 * Unit tests for the Ftl facade: mapping consistency, read grouping,
 * pseudo reads, trim, space accounting and over-provisioning.
 */

#include <gtest/gtest.h>

#include "core/hps.hh"
#include "ftl/ftl.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

/** Shorthand: a typed logical unit number from a literal. */
constexpr flash::Lpn
L(std::int64_t v)
{
    return flash::Lpn{v};
}

namespace {

flash::Geometry
tinyGeom(std::vector<flash::PoolConfig> pools = {{4096, 4}})
{
    flash::Geometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.diesPerChip = 1;
    g.planesPerDie = 2;
    g.pagesPerBlock = 4;
    g.pools = std::move(pools);
    return g;
}

flash::Timing
tinyTiming(std::size_t pool_count = 1)
{
    flash::Timing t;
    t.pools.assign(pool_count, flash::Timing::page4k());
    if (pool_count > 1)
        t.pools[1] = flash::Timing::page8k();
    return t;
}

struct FtlUnderTest
{
    flash::Geometry geom;
    flash::Timing timing;
    flash::FlashArray array;
    Ftl ftl;

    explicit FtlUnderTest(
        std::vector<flash::PoolConfig> pools = {{4096, 4}},
        FtlConfig cfg = makeCfg())
        : geom(tinyGeom(std::move(pools))),
          timing(tinyTiming(geom.pools.size())),
          array(geom, timing, true),
          ftl(array, cfg)
    {
    }

    static FtlConfig
    makeCfg()
    {
        FtlConfig cfg;
        cfg.opRatio = 0.25;
        cfg.gc.hardFreeBlocks = 1;
        cfg.gc.softFreeBlocks = 2;
        return cfg;
    }
};

} // namespace

TEST(Ftl, LogicalUnitsRespectOverProvisioning)
{
    FtlUnderTest t;
    // 2 planes * 4 blocks * 4 pages = 32 raw units; 25% reserved.
    EXPECT_EQ(t.ftl.logicalUnits(), 24u);
}

TEST(Ftl, WriteThenReadMapsUnits)
{
    FtlUnderTest t;
    sim::Time w = t.ftl.writeGroup(0, {L(5)}, 0).done;
    EXPECT_GT(w, 0);
    EXPECT_TRUE(t.ftl.map().mapped(L(5)));
    sim::Time r = t.ftl.readUnits(L(5), 1, w).done;
    EXPECT_GT(r, w);
    EXPECT_EQ(t.ftl.stats().hostUnitsWritten, 1u);
    EXPECT_EQ(t.ftl.stats().hostUnitsRead, 1u);
}

TEST(Ftl, OverwriteInvalidatesOldLocation)
{
    FtlUnderTest t;
    t.ftl.writeGroup(0, {L(5)}, 0);
    MapEntry old = t.ftl.map().lookup(L(5));
    t.ftl.writeGroup(0, {L(5)}, 0);
    MapEntry cur = t.ftl.map().lookup(L(5));
    EXPECT_NE(old, cur);
    auto &pool = t.array
                     .plane(static_cast<std::uint32_t>(old.planeLinear))
                     .pool(old.pool);
    EXPECT_FALSE(pool.unitValid(old.ppn, old.unit));
}

TEST(Ftl, MultiUnitPageSharesPhysicalPage)
{
    FtlUnderTest t({{8192, 4}});
    t.ftl.writeGroup(0, {L(10), L(11)}, 0);
    const MapEntry &a = t.ftl.map().lookup(L(10));
    const MapEntry &b = t.ftl.map().lookup(L(11));
    EXPECT_EQ(a.ppn, b.ppn);
    EXPECT_EQ(a.planeLinear, b.planeLinear);
    EXPECT_NE(a.unit, b.unit);
}

TEST(Ftl, ReadGroupsUnitsOfSamePage)
{
    FtlUnderTest t({{8192, 4}});
    t.ftl.writeGroup(0, {L(10), L(11)}, 0);
    auto before = t.ftl.stats().hostReadOps;
    t.ftl.readUnits(L(10), 2, 0);
    EXPECT_EQ(t.ftl.stats().hostReadOps, before + 1);
}

TEST(Ftl, ReadSplitAcrossPagesIssuesMultipleOps)
{
    FtlUnderTest t;
    t.ftl.writeGroup(0, {L(10)}, 0);
    t.ftl.writeGroup(0, {L(11)}, 0);
    auto before = t.ftl.stats().hostReadOps;
    t.ftl.readUnits(L(10), 2, 0);
    EXPECT_EQ(t.ftl.stats().hostReadOps, before + 2);
}

TEST(Ftl, FragmentedReadCompletionIsOrderStable)
{
    // Regression pin for the read-grouping determinism fix: grouped
    // reads must issue in first-touch (logical) order. The grouping
    // container used to be iterated in std::unordered_map hash
    // order, which is unspecified — a different standard library
    // could legally issue the same groups in another order and shift
    // completion times, breaking cross-platform golden replays
    // (ReplayGolden.TwitterHpsByteIdentical pins the end-to-end
    // consequence; this test pins the mechanism in isolation).
    // Interleave single-unit writes so consecutive lpns land on
    // alternating planes: readUnits(0, 6) then needs six distinct
    // groups spread over both planes.
    auto run = [] {
        FtlUnderTest t;
        for (std::int64_t u : {0, 2, 4, 1, 3, 5})
            t.ftl.writeGroup(0, {L(u)}, 0);
        const sim::Time done = t.ftl.readUnits(L(0), 6, 0).done;
        EXPECT_EQ(t.ftl.stats().hostReadOps, 6u);
        return done;
    };
    // Two identically-built devices, identical sequence: the grouped
    // read must complete at the identical instant.
    EXPECT_EQ(run(), run());
}

TEST(Ftl, UnmappedReadStillCostsTime)
{
    FtlUnderTest t;
    sim::Time r = t.ftl.readUnits(L(0), 4, 0).done;
    EXPECT_GT(r, 0);
    EXPECT_EQ(t.ftl.stats().hostReadOps, 4u);
}

TEST(Ftl, UnmappedReadUsesPseudoDistributorSplit)
{
    // With an HPS-style pseudo distributor, a 4-unit unmapped read is
    // charged as two 8KB page reads instead of four 4KB reads.
    FtlUnderTest t({{4096, 4}, {8192, 4}});
    core::HpsDistributor dist(0, 1);
    t.ftl.setPseudoReadDistributor(&dist);
    t.ftl.readUnits(L(0), 4, 0);
    EXPECT_EQ(t.ftl.stats().hostReadOps, 2u);
}

TEST(Ftl, ZeroUnitReadIsFree)
{
    FtlUnderTest t;
    EXPECT_EQ(t.ftl.readUnits(L(0), 0, 77).done, 77);
    EXPECT_EQ(t.ftl.stats().hostReadOps, 0u);
}

TEST(Ftl, TrimDropsMappingAndInvalidates)
{
    FtlUnderTest t;
    t.ftl.writeGroup(0, {L(3)}, 0);
    MapEntry e = t.ftl.map().lookup(L(3));
    t.ftl.trim(L(3), 1);
    EXPECT_FALSE(t.ftl.map().mapped(L(3)));
    auto &pool =
        t.array.plane(static_cast<std::uint32_t>(e.planeLinear))
            .pool(e.pool);
    EXPECT_FALSE(pool.unitValid(e.ppn, e.unit));
}

TEST(Ftl, TrimUnmappedIsNoop)
{
    FtlUnderTest t;
    t.ftl.trim(L(0), 8);
    EXPECT_EQ(t.ftl.map().mappedCount(), 0u);
}

TEST(Ftl, SpaceAccountingChargesFullPage)
{
    FtlUnderTest t({{4096, 4}, {8192, 4}});
    t.ftl.writeGroup(1, {L(0)}, 0); // one unit into an 8KB page
    EXPECT_EQ(t.ftl.stats().hostUnitsWritten, 1u);
    EXPECT_EQ(t.ftl.stats().hostBytesConsumed, 8192u);
    t.ftl.writeGroup(0, {L(1)}, 0); // one unit into a 4KB page
    EXPECT_EQ(t.ftl.stats().hostBytesConsumed, 8192u + 4096u);
}

TEST(Ftl, RoundRobinSpreadsPlanes)
{
    FtlUnderTest t;
    t.ftl.writeGroup(0, {L(0)}, 0);
    t.ftl.writeGroup(0, {L(1)}, 0);
    EXPECT_NE(t.ftl.map().lookup(L(0)).planeLinear,
              t.ftl.map().lookup(L(1)).planeLinear);
}

TEST(Ftl, InstallGroupIsStateOnly)
{
    FtlUnderTest t;
    t.ftl.installGroup(0, {L(7)});
    EXPECT_TRUE(t.ftl.map().mapped(L(7)));
    EXPECT_EQ(t.array.totalStats().programs, 0u);
    EXPECT_EQ(t.ftl.stats().hostUnitsWritten, 0u);
    // A later read of the installed unit is a normal mapped read.
    t.ftl.readUnits(L(7), 1, 0);
    EXPECT_EQ(t.array.totalStats().reads, 1u);
}

TEST(FtlDeath, ReadPastLogicalCapacityPanics)
{
    FtlUnderTest t;
    EXPECT_DEATH(t.ftl.readUnits(L(23), 2, 0), "past logical capacity");
}

TEST(FtlDeath, OversizedGroupPanics)
{
    FtlUnderTest t;
    EXPECT_DEATH(t.ftl.writeGroup(0, {L(0), L(1)}, 0), "unitsPerPage");
}

TEST(Ftl, PoolOverflowRedirectsToOtherPool)
{
    // Fill the tiny 8KB pool with live pairs until it cannot reclaim,
    // then keep writing pairs: they must overflow into the 4KB pool
    // instead of wedging the device.
    FtlUnderTest t({{4096, 8}, {8192, 2}});
    sim::Time now = 0;
    flash::Lpn lpn{0};
    // 8KB pool: 2 planes x 2 blocks x 4 pages x 2 units = 32 units.
    // Write 64 distinct pairs; beyond the pool's live capacity the
    // FTL must redirect.
    for (int i = 0; i < 32; ++i, lpn += 2)
        now = t.ftl.writeGroup(1, {lpn, lpn + 1}, now).done;
    EXPECT_GT(t.ftl.stats().overflowRedirects, 0u);
    // All data remains addressable.
    for (flash::Lpn u{0}; u < lpn; ++u)
        EXPECT_TRUE(t.ftl.map().mapped(u)) << u.value();
}
