/**
 * @file
 * Unit tests for the plane-allocation policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "ftl/allocator.hh"

using namespace emmcsim::ftl;
using emmcsim::flash::Lpn;

TEST(PlaneAllocator, RoundRobinCycles)
{
    PlaneAllocator a(AllocPolicy::RoundRobin, 4, 1);
    EXPECT_EQ(a.nextPlane(0, Lpn{100}), 0u);
    EXPECT_EQ(a.nextPlane(0, Lpn{100}), 1u);
    EXPECT_EQ(a.nextPlane(0, Lpn{100}), 2u);
    EXPECT_EQ(a.nextPlane(0, Lpn{100}), 3u);
    EXPECT_EQ(a.nextPlane(0, Lpn{100}), 0u);
}

TEST(PlaneAllocator, RoundRobinPerPoolCursors)
{
    PlaneAllocator a(AllocPolicy::RoundRobin, 4, 2);
    EXPECT_EQ(a.nextPlane(0, Lpn{0}), 0u);
    EXPECT_EQ(a.nextPlane(1, Lpn{0}), 0u); // independent cursor
    EXPECT_EQ(a.nextPlane(0, Lpn{0}), 1u);
    EXPECT_EQ(a.nextPlane(1, Lpn{0}), 1u);
}

TEST(PlaneAllocator, StaticLpnIsDeterministic)
{
    PlaneAllocator a(AllocPolicy::StaticLpn, 8, 1);
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(a.nextPlane(0, Lpn{0}), 0u);
        EXPECT_EQ(a.nextPlane(0, Lpn{5}), 5u);
        EXPECT_EQ(a.nextPlane(0, Lpn{8}), 0u);
        EXPECT_EQ(a.nextPlane(0, Lpn{13}), 5u);
    }
}

TEST(PlaneAllocator, StaticLpnStripesSequentialLpns)
{
    PlaneAllocator a(AllocPolicy::StaticLpn, 4, 1);
    for (std::int64_t lpn = 0; lpn < 16; ++lpn) {
        EXPECT_EQ(a.nextPlane(0, Lpn{lpn}),
                  static_cast<std::uint32_t>(lpn % 4));
    }
}

TEST(PlaneAllocatorDeath, PoolOutOfRange)
{
    PlaneAllocator a(AllocPolicy::RoundRobin, 2, 1);
    EXPECT_DEATH(a.nextPlane(1, Lpn{0}), "pool out of range");
}

TEST(PlaneAllocator, RoundRobinInterleavesDies)
{
    // 8 planes over 4 dies (2 planes each): consecutive allocations
    // must land on 4 distinct dies before reusing one.
    PlaneAllocator a(AllocPolicy::RoundRobin, 8, 1, 4);
    std::uint32_t p0 = a.nextPlane(0, Lpn{0});
    std::uint32_t p1 = a.nextPlane(0, Lpn{0});
    std::uint32_t p2 = a.nextPlane(0, Lpn{0});
    std::uint32_t p3 = a.nextPlane(0, Lpn{0});
    EXPECT_NE(p0 / 2, p1 / 2);
    EXPECT_NE(p1 / 2, p2 / 2);
    EXPECT_NE(p2 / 2, p3 / 2);
    // A full cycle covers all 8 planes exactly once.
    std::set<std::uint32_t> seen = {p0, p1, p2, p3};
    for (int i = 0; i < 4; ++i)
        seen.insert(a.nextPlane(0, Lpn{0}));
    EXPECT_EQ(seen.size(), 8u);
}
