/**
 * @file
 * Unit tests for the logical-to-physical page map.
 */

#include <gtest/gtest.h>

#include "ftl/mapping.hh"

using namespace emmcsim::ftl;
using emmcsim::flash::Lpn;
using emmcsim::flash::Ppn;

namespace {

MapEntry
entry(std::int32_t plane, std::uint16_t pool, std::uint64_t ppn,
      std::uint16_t slot)
{
    MapEntry e;
    e.planeLinear = plane;
    e.pool = pool;
    e.ppn = emmcsim::flash::Ppn{ppn};
    e.unit = slot;
    return e;
}

} // namespace

TEST(PageMap, StartsUnmapped)
{
    PageMap m(100);
    EXPECT_EQ(m.logicalUnits(), 100u);
    EXPECT_EQ(m.mappedCount(), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(m.mapped(Lpn{i}));
}

TEST(PageMap, SetAndLookup)
{
    PageMap m(10);
    m.set(Lpn{3}, entry(2, 1, 42, 1));
    EXPECT_TRUE(m.mapped(Lpn{3}));
    const MapEntry &e = m.lookup(Lpn{3});
    EXPECT_EQ(e.planeLinear, 2);
    EXPECT_EQ(e.pool, 1);
    EXPECT_EQ(e.ppn, Ppn{42});
    EXPECT_EQ(e.unit, 1);
    EXPECT_EQ(m.mappedCount(), 1u);
}

TEST(PageMap, OverwriteKeepsCount)
{
    PageMap m(10);
    m.set(Lpn{3}, entry(0, 0, 1, 0));
    m.set(Lpn{3}, entry(1, 0, 2, 0));
    EXPECT_EQ(m.mappedCount(), 1u);
    EXPECT_EQ(m.lookup(Lpn{3}).ppn, Ppn{2});
}

TEST(PageMap, ClearUnmaps)
{
    PageMap m(10);
    m.set(Lpn{5}, entry(0, 0, 9, 0));
    m.clear(Lpn{5});
    EXPECT_FALSE(m.mapped(Lpn{5}));
    EXPECT_EQ(m.mappedCount(), 0u);
}

TEST(PageMap, ClearUnmappedIsNoop)
{
    PageMap m(10);
    m.clear(Lpn{7});
    EXPECT_EQ(m.mappedCount(), 0u);
}

TEST(PageMap, EntryMappedPredicate)
{
    MapEntry e;
    EXPECT_FALSE(e.mapped());
    e.planeLinear = 0;
    EXPECT_TRUE(e.mapped());
}

TEST(PageMapDeath, OutOfRangePanics)
{
    PageMap m(4);
    EXPECT_DEATH(m.lookup(Lpn{4}), "out of logical range");
    EXPECT_DEATH(m.lookup(Lpn{-1}), "out of logical range");
    EXPECT_DEATH(m.set(Lpn{4}, entry(0, 0, 0, 0)), "out of logical range");
}

TEST(PageMapDeath, SetUnmappedEntryPanics)
{
    PageMap m(4);
    MapEntry unmapped;
    EXPECT_DEATH(m.set(Lpn{0}, unmapped), "use clear");
}

TEST(PageMap, ManyEntriesIndependent)
{
    PageMap m(1000);
    for (int i = 0; i < 1000; i += 3)
        m.set(Lpn{i}, entry(i % 8, 0, static_cast<std::uint64_t>(i) * 7, 0));
    for (int i = 0; i < 1000; ++i) {
        if (i % 3 == 0) {
            ASSERT_TRUE(m.mapped(Lpn{i}));
            EXPECT_EQ(m.lookup(Lpn{i}).ppn,
                      Ppn{static_cast<std::uint64_t>(i) * 7});
        } else {
            EXPECT_FALSE(m.mapped(Lpn{i}));
        }
    }
}
