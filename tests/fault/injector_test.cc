/**
 * @file
 * FaultInjector unit tests: the neutrality contract of a disabled
 * injector, the wear/retention RBER curve, the read-retry ladder,
 * seed-determinism of the fault stream, and the forced-fault hooks.
 */

#include <gtest/gtest.h>

#include "fault/injector.hh"

using namespace emmcsim;
using namespace emmcsim::fault;

namespace {

/** Enabled config with every probabilistic knob at zero. */
FaultConfig
quietConfig()
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.seed = 17;
    return cfg;
}

} // namespace

TEST(FaultInjector, DisabledInjectorIsInert)
{
    FaultConfig cfg; // enabled == false by default
    cfg.baseRber = 0.5;
    cfg.programFailProb = 1.0;
    cfg.eraseFailProb = 1.0;
    FaultInjector inj(cfg);
    EXPECT_FALSE(inj.enabled());

    for (int i = 0; i < 100; ++i) {
        const ReadFault f = inj.onRead(1000, 1000);
        EXPECT_EQ(f.retries, 0u);
        EXPECT_FALSE(f.uncorrectable);
        EXPECT_FALSE(inj.programFails(1000));
        EXPECT_FALSE(inj.eraseFails(1000));
    }
    // Disabled means not even the counters move.
    EXPECT_EQ(inj.stats().readsEvaluated, 0u);
    EXPECT_EQ(inj.stats().programsEvaluated, 0u);
    EXPECT_EQ(inj.stats().erasesEvaluated, 0u);
}

TEST(FaultInjector, BelowThresholdReadsAreCleanAndDrawFree)
{
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 1e-4; // half the default 2e-4 ECC threshold
    FaultInjector a(cfg);
    cfg.seed = 999; // a different stream must not matter: no draws
    FaultInjector b(cfg);

    for (int i = 0; i < 200; ++i) {
        const ReadFault fa = a.onRead(0, 0);
        const ReadFault fb = b.onRead(0, 0);
        EXPECT_EQ(fa.retries, 0u);
        EXPECT_FALSE(fa.uncorrectable);
        EXPECT_EQ(fb.retries, 0u);
    }
    EXPECT_EQ(a.stats().cleanReads, 200u);
    EXPECT_EQ(a.stats().correctedReads, 0u);
    EXPECT_EQ(a.stats().uncorrectableReads, 0u);
    EXPECT_EQ(a.stats().retryRounds, 0u);
}

TEST(FaultInjector, RberCurveGrowsWithWearAndAge)
{
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 1e-5;
    cfg.wearRberFactor = 1e-3;
    cfg.retentionRberPerAge = 1e-9;
    FaultInjector inj(cfg);

    EXPECT_DOUBLE_EQ(inj.rberAt(0, 0), 1e-5);
    EXPECT_GT(inj.rberAt(100, 0), inj.rberAt(10, 0));
    EXPECT_GT(inj.rberAt(0, 5000), inj.rberAt(0, 50));
    // Both terms compose additively.
    EXPECT_GT(inj.rberAt(100, 5000), inj.rberAt(100, 0));
}

TEST(FaultInjector, LadderCorrectsModerateRber)
{
    // rber sits between the level-0 threshold (2e-4) and the level-1
    // threshold (3.2e-4): the default read may fail, but retry level 1
    // always recovers — nothing can be uncorrectable.
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 3e-4;
    FaultInjector inj(cfg);

    for (int i = 0; i < 500; ++i) {
        const ReadFault f = inj.onRead(0, 0);
        EXPECT_FALSE(f.uncorrectable);
        EXPECT_LE(f.retries, 1u);
    }
    const FaultStats &st = inj.stats();
    EXPECT_EQ(st.readsEvaluated, 500u);
    EXPECT_EQ(st.cleanReads + st.correctedReads, 500u);
    EXPECT_EQ(st.uncorrectableReads, 0u);
    // pFail ~0.39 at level 0: both outcomes must actually occur.
    EXPECT_GT(st.cleanReads, 0u);
    EXPECT_GT(st.correctedReads, 0u);
    EXPECT_EQ(st.retryRounds, st.correctedReads);
}

TEST(FaultInjector, ExtremeRberExhaustsTheLadder)
{
    // rber is ~38x the deepest ladder threshold: survival probability
    // is exp(-37) per level — uncorrectable for all practical purposes.
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 0.05;
    FaultInjector inj(cfg);

    for (int i = 0; i < 100; ++i) {
        const ReadFault f = inj.onRead(0, 0);
        EXPECT_TRUE(f.uncorrectable);
        EXPECT_EQ(f.retries, cfg.readRetryLevels);
    }
    EXPECT_EQ(inj.stats().uncorrectableReads, 100u);
    EXPECT_EQ(inj.stats().retryRounds, 100u * cfg.readRetryLevels);
}

TEST(FaultInjector, SameSeedReplaysTheSameFaultSequence)
{
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 3e-4;
    cfg.programFailProb = 0.3;
    cfg.eraseFailProb = 0.3;
    FaultInjector a(cfg);
    FaultInjector b(cfg);

    for (int i = 0; i < 300; ++i) {
        const auto wear = static_cast<std::uint32_t>(i % 7);
        const ReadFault ra = a.onRead(wear, i);
        const ReadFault rb = b.onRead(wear, i);
        EXPECT_EQ(ra.retries, rb.retries) << "read " << i;
        EXPECT_EQ(ra.uncorrectable, rb.uncorrectable) << "read " << i;
        EXPECT_EQ(a.programFails(wear), b.programFails(wear)) << i;
        EXPECT_EQ(a.eraseFails(wear), b.eraseFails(wear)) << i;
    }
    EXPECT_EQ(a.stats().correctedReads, b.stats().correctedReads);
    EXPECT_EQ(a.stats().programFailures, b.stats().programFailures);
    EXPECT_EQ(a.stats().eraseFailures, b.stats().eraseFailures);
}

TEST(FaultInjector, ForcedFaultsConsumeNoRngDraws)
{
    FaultConfig cfg = quietConfig();
    cfg.baseRber = 3e-4; // above threshold: every read draws
    FaultInjector plain(cfg);
    FaultInjector forced(cfg);

    // Plant one of each forced fault up front; the probabilistic
    // stream both injectors see afterwards must stay aligned.
    forced.forceReadFailures(1);
    forced.forceProgramFailures(1);
    forced.forceEraseFailures(1);

    const ReadFault f = forced.onRead(0, 0);
    EXPECT_TRUE(f.uncorrectable);
    EXPECT_EQ(f.retries, cfg.readRetryLevels);
    EXPECT_TRUE(forced.programFails(0));
    EXPECT_TRUE(forced.eraseFails(0));
    EXPECT_EQ(forced.stats().forcedFaults, 3u);

    for (int i = 0; i < 200; ++i) {
        const ReadFault ra = plain.onRead(0, 0);
        const ReadFault rb = forced.onRead(0, 0);
        EXPECT_EQ(ra.retries, rb.retries) << "read " << i;
        EXPECT_EQ(ra.uncorrectable, rb.uncorrectable) << "read " << i;
    }
}

TEST(FaultInjector, ProgramAndEraseFailuresFollowTheirProbabilities)
{
    FaultConfig cfg = quietConfig();
    cfg.programFailProb = 1.0;
    cfg.eraseFailProb = 1.0;
    FaultInjector certain(cfg);
    for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(certain.programFails(0));
        EXPECT_TRUE(certain.eraseFails(0));
    }
    EXPECT_EQ(certain.stats().programFailures, 20u);
    EXPECT_EQ(certain.stats().eraseFailures, 20u);

    cfg.programFailProb = 0.0;
    cfg.eraseFailProb = 0.0;
    FaultInjector never(cfg);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(never.programFails(1000000));
        EXPECT_FALSE(never.eraseFails(1000000));
    }
    EXPECT_EQ(never.stats().programFailures, 0u);
    EXPECT_EQ(never.stats().eraseFailures, 0u);
}

TEST(FaultInjector, WearScalesProgramFailureRate)
{
    FaultConfig cfg = quietConfig();
    cfg.programFailProb = 0.01;
    cfg.wearFailFactor = 1.0; // p grows linearly with erase count
    FaultInjector fresh(cfg);
    FaultInjector worn(cfg);

    int fresh_fails = 0;
    int worn_fails = 0;
    for (int i = 0; i < 2000; ++i) {
        fresh_fails += fresh.programFails(0) ? 1 : 0;
        worn_fails += worn.programFails(99) ? 1 : 0; // p = 1.0, clamped
    }
    EXPECT_EQ(worn_fails, 2000);
    EXPECT_LT(fresh_fails, 200); // ~20 expected at p = 0.01
}

TEST(FaultInjectorDeath, ConfigValidation)
{
    FaultConfig bad_rber;
    bad_rber.baseRber = 1.5;
    EXPECT_DEATH(FaultInjector{bad_rber}, "baseRber");

    FaultConfig bad_gain;
    bad_gain.retryThresholdGain = 1.0;
    EXPECT_DEATH(FaultInjector{bad_gain}, "retryThresholdGain");

    FaultConfig bad_prob;
    bad_prob.programFailProb = 2.0;
    EXPECT_DEATH(FaultInjector{bad_prob}, "probabilities");

    FaultConfig bad_thresh;
    bad_thresh.eccRberThreshold = 0.0;
    EXPECT_DEATH(FaultInjector{bad_thresh}, "eccRberThreshold");
}
