/**
 * @file
 * Error-handling path tests: each NAND fault class is planted through
 * the injector's force hooks and the recovery machinery is checked end
 * to end — relocation after program failures, retirement after erase
 * failures, read-only degradation when spares run out, uncorrectable
 * reads surfacing as structured errors, host-side retry — with the
 * check/ invariants passing after every scenario.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/audit.hh"
#include "check/invariants.hh"
#include "core/experiment.hh"
#include "core/scheme.hh"
#include "fault/injector.hh"
#include "ftl/ftl.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::ftl;

namespace {

/** Enabled injector config with every probabilistic knob at zero. */
fault::FaultConfig
quietFaultConfig()
{
    fault::FaultConfig cfg;
    cfg.enabled = true;
    cfg.seed = 17;
    return cfg;
}

/**
 * The GC rig geometry (1 plane, 1 pool, 4 blocks of 4 pages, 8 logical
 * units) with a fault injector wired into the array.
 */
struct FaultRig
{
    flash::Geometry geom;
    flash::Timing timing;
    flash::FlashArray array;
    fault::FaultInjector injector;
    Ftl ftl;

    explicit FaultRig(std::uint32_t spares = 8)
        : geom(makeGeom()),
          timing(makeTiming()),
          array(geom, timing, true),
          injector(quietFaultConfig()),
          ftl(array, makeCfg(spares))
    {
        array.attachFaultInjector(&injector);
    }

    static flash::Geometry
    makeGeom()
    {
        flash::Geometry g;
        g.channels = 1;
        g.chipsPerChannel = 1;
        g.diesPerChip = 1;
        g.planesPerDie = 1;
        g.pagesPerBlock = 4;
        g.pools = {flash::PoolConfig{4096, 4}};
        return g;
    }

    static flash::Timing
    makeTiming()
    {
        flash::Timing t;
        t.pools = {flash::Timing::page4k()};
        return t;
    }

    static FtlConfig
    makeCfg(std::uint32_t spares)
    {
        FtlConfig cfg;
        cfg.opRatio = 0.5; // 8 logical units of 16 raw
        cfg.gc.hardFreeBlocks = 1;
        cfg.gc.softFreeBlocks = 3;
        cfg.bbm.spareBlocksPerPlanePool = spares;
        return cfg;
    }

    /** One overwrite round across all 8 logical units. */
    sim::Time
    overwriteRound(sim::Time t)
    {
        for (flash::Lpn lpn{0}; lpn.value() < 8; ++lpn)
            t = ftl.writeGroup(0, {lpn}, t).done;
        return t;
    }

    /** The first @p live logical units still resolve to their lpn. */
    void
    expectDataIntact(std::int64_t live = 8) const
    {
        for (flash::Lpn lpn{0}; lpn.value() < live; ++lpn) {
            ASSERT_TRUE(ftl.map().mapped(lpn)) << "lpn " << lpn;
            const MapEntry &e = ftl.map().lookup(lpn);
            const auto &pool =
                array.plane(static_cast<std::uint32_t>(e.planeLinear))
                    .pool(e.pool);
            ASSERT_TRUE(pool.unitValid(e.ppn, e.unit)) << "lpn " << lpn;
            ASSERT_EQ(pool.lpnAt(e.ppn, e.unit), lpn);
        }
    }

    /** All structural invariants (mapping + reliability) hold. */
    void
    expectInvariantsClean() const
    {
        check::CheckContext ctx("fault-recovery");
        check::checkMappingBijection(ftl, ctx);
        check::checkUnitConservation(ftl, ctx);
        check::checkRetiredBlocks(ftl, ctx);
        check::checkSpareAccounting(ftl, ctx);
        EXPECT_EQ(ctx.failures(), 0u);
        for (const auto &v : ctx.violations())
            ADD_FAILURE() << v;
    }
};

} // namespace

TEST(FaultRecovery, ProgramFailureRelocatesWithoutLosingData)
{
    FaultRig rig;
    sim::Time t = rig.overwriteRound(0);

    rig.injector.forceProgramFailures(1);
    const WriteResult res = rig.ftl.writeGroup(0, {flash::Lpn{0}}, t);
    EXPECT_TRUE(res.accepted);
    EXPECT_GT(res.done, t);

    EXPECT_EQ(rig.ftl.stats().relocatedPrograms, 1u);
    EXPECT_EQ(rig.ftl.badBlocks().stats().programFailures, 1u);
    EXPECT_EQ(rig.ftl.badBlocks().stats().relocatedPrograms, 1u);
    EXPECT_FALSE(rig.ftl.readOnly());

    // The failed block is flagged suspect, awaiting scrub.
    const auto &pool = rig.array.plane(0).pool(0);
    std::uint32_t suspects = 0;
    for (std::uint32_t b = 0; b < pool.blockCount(); ++b)
        suspects += pool.blockSuspect(flash::BlockId{b}) ? 1 : 0;
    EXPECT_EQ(suspects, 1u);

    rig.expectDataIntact();
    rig.expectInvariantsClean();
}

TEST(FaultRecovery, SuspectBlockIsScrubbedAndRetired)
{
    FaultRig rig;
    // Keep the live footprint to one block so the scrub path has free
    // space to drain into even after the suspect block is sealed off.
    sim::Time t = 0;
    for (flash::Lpn lpn{0}; lpn.value() < 4; ++lpn)
        t = rig.ftl.writeGroup(0, {lpn}, t).done;
    rig.injector.forceProgramFailures(1);
    t = rig.ftl.writeGroup(0, {flash::Lpn{0}}, t).done;

    // Idle GC prioritizes scrubbing: it drains the suspect block's
    // survivors and retires it instead of erasing it.
    const sim::Time used = rig.ftl.idleGc(t, t + sim::seconds(10));
    EXPECT_GT(used, 0);

    ASSERT_EQ(rig.ftl.badBlocks().totalRetired(), 1u);
    const BadBlockEntry &e = rig.ftl.badBlocks().table().front();
    EXPECT_EQ(e.cause, RetireCause::ProgramFail);
    EXPECT_EQ(rig.array.plane(0).pool(0).retiredBlockCount(), 1u);
    EXPECT_TRUE(rig.array.plane(0).pool(0).blockRetired(flash::BlockId{e.block}));
    EXPECT_GT(rig.ftl.gcStats().scrubSteps, 0u);
    EXPECT_FALSE(rig.ftl.readOnly()) << "spare budget not exhausted";

    rig.expectDataIntact(4);
    rig.expectInvariantsClean();
}

TEST(FaultRecovery, EraseFailureRetiresTheBlockOutright)
{
    FaultRig rig;
    rig.injector.forceEraseFailures(1);

    // Overwrite until GC erases a block; the planted failure retires
    // the first victim on the spot.
    sim::Time t = 0;
    for (int round = 0; round < 20 &&
                        rig.ftl.badBlocks().stats().eraseFailures == 0;
         ++round) {
        t = rig.overwriteRound(t);
    }

    ASSERT_EQ(rig.ftl.badBlocks().stats().eraseFailures, 1u);
    ASSERT_EQ(rig.ftl.badBlocks().totalRetired(), 1u);
    EXPECT_EQ(rig.ftl.badBlocks().table().front().cause,
              RetireCause::EraseFail);
    EXPECT_EQ(rig.array.plane(0).pool(0).retiredBlockCount(), 1u);
    EXPECT_FALSE(rig.ftl.readOnly());

    rig.expectDataIntact();
    rig.expectInvariantsClean();
}

TEST(FaultRecovery, SpareExhaustionDegradesToReadOnly)
{
    FaultRig rig(/*spares=*/1);
    rig.injector.forceEraseFailures(1);

    sim::Time t = 0;
    for (int round = 0; round < 20 && !rig.ftl.readOnly(); ++round)
        t = rig.overwriteRound(t);

    ASSERT_TRUE(rig.ftl.readOnly());
    EXPECT_EQ(rig.ftl.badBlocks().readOnlyCause(),
              ReadOnlyCause::SpareExhaustion);

    // Writes now fail with a structured rejection, not a panic.
    const std::uint64_t rejected_before = rig.ftl.stats().rejectedWrites;
    const WriteResult res = rig.ftl.writeGroup(0, {flash::Lpn{3}}, t);
    EXPECT_FALSE(res.accepted);
    EXPECT_GT(rig.ftl.stats().rejectedWrites, rejected_before);

    // Reads keep working on the degraded device.
    const ReadResult rd = rig.ftl.readUnits(flash::Lpn{0}, 8, t);
    EXPECT_GE(rd.done, t);
    EXPECT_EQ(rd.uncorrectablePages, 0u);
    rig.expectDataIntact();
    rig.expectInvariantsClean();
}

TEST(FaultRecovery, UncorrectableReadSurfacesAsStructuredError)
{
    FaultRig rig;
    sim::Time t = rig.overwriteRound(0);

    // A clean read first, to compare durations against.
    const ReadResult clean = rig.ftl.readUnits(flash::Lpn{0}, 1, t);
    EXPECT_EQ(clean.uncorrectablePages, 0u);
    const sim::Time clean_duration = clean.done - t;

    rig.injector.forceReadFailures(1);
    const ReadResult bad = rig.ftl.readUnits(flash::Lpn{0}, 1, clean.done);
    EXPECT_EQ(bad.uncorrectablePages, 1u);
    EXPECT_EQ(rig.ftl.stats().uncorrectableReads, 1u);
    // The full retry ladder was charged before giving up.
    EXPECT_GT(bad.done - clean.done, clean_duration);

    // The mapping is untouched: the next read succeeds.
    const ReadResult again = rig.ftl.readUnits(flash::Lpn{0}, 1, bad.done);
    EXPECT_EQ(again.uncorrectablePages, 0u);
    rig.expectInvariantsClean();
}

namespace {

/** A small write-then-read trace over @p units logical units. */
trace::Trace
writeReadTrace(std::uint32_t units, sim::Time gap)
{
    trace::Trace t("fault-e2e");
    sim::Time now = 0;
    for (std::uint32_t i = 0; i < units; ++i, now += gap) {
        trace::TraceRecord r;
        r.arrival = now;
        r.op = trace::OpType::Write;
        r.lbaSector = units::unitToLba(units::UnitAddr{i});
        r.sizeBytes = units::Bytes{sim::kUnitBytes};
        t.push(r);
    }
    for (std::uint32_t i = 0; i < units; ++i, now += gap) {
        trace::TraceRecord r;
        r.arrival = now;
        r.op = trace::OpType::Read;
        r.lbaSector = units::unitToLba(units::UnitAddr{i});
        r.sizeBytes = units::Bytes{sim::kUnitBytes};
        t.push(r);
    }
    return t;
}

} // namespace

TEST(FaultRecoveryDevice, ReadErrorReachesTheHost)
{
    sim::Simulator s;
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    emmc::EmmcConfig cfg =
        core::applyOptions(core::schemeConfig(core::SchemeKind::HPS),
                           opts);
    cfg.fault = quietFaultConfig();
    auto dev = core::makeDevice(s, core::SchemeKind::HPS, cfg);

    // The first read of the trace hits the planted fault; with no
    // retry budget the request fails for good.
    dev->faultInjector().forceReadFailures(1);
    host::Replayer rep(s, *dev);
    host::ReplayOptions ropts;
    ropts.maxRetries = 0;
    trace::Trace replayed =
        rep.replay(writeReadTrace(4, sim::milliseconds(2)), ropts);

    EXPECT_EQ(dev->stats().readErrorRequests, 1u);
    EXPECT_EQ(rep.stats().errorCompletions, 1u);
    EXPECT_EQ(rep.stats().failedRequests, 1u);
    EXPECT_EQ(rep.stats().retriesScheduled, 0u);
    // Failed or not, every request got its timestamps.
    for (const auto &r : replayed.records())
        EXPECT_TRUE(r.replayed());
}

TEST(FaultRecoveryDevice, HostRetryRecoversATransientReadError)
{
    sim::Simulator s;
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    emmc::EmmcConfig cfg =
        core::applyOptions(core::schemeConfig(core::SchemeKind::HPS),
                           opts);
    cfg.fault = quietFaultConfig();
    auto dev = core::makeDevice(s, core::SchemeKind::HPS, cfg);

    dev->faultInjector().forceReadFailures(1);
    host::Replayer rep(s, *dev);
    host::ReplayOptions ropts;
    ropts.maxRetries = 3;
    rep.replay(writeReadTrace(4, sim::milliseconds(2)), ropts);

    // One error completion, one resubmission, full recovery — and the
    // retry cost is visible as extra latency.
    EXPECT_EQ(rep.stats().errorCompletions, 1u);
    EXPECT_EQ(rep.stats().retriesScheduled, 1u);
    EXPECT_EQ(rep.stats().recoveredRequests, 1u);
    EXPECT_EQ(rep.stats().failedRequests, 0u);
    EXPECT_GT(rep.stats().retryPenalty, 0);
    EXPECT_EQ(dev->stats().readErrorRequests, 1u);
}

TEST(FaultRecoveryDevice, WriteRejectionSurfacesOnDegradedDevice)
{
    // Tiny single-plane device with a one-block spare budget: the
    // first erase failure retires a block and flips it read-only.
    sim::Simulator s;
    emmc::EmmcConfig cfg = core::schemeConfig(core::SchemeKind::PS4);
    cfg.geometry = FaultRig::makeGeom();
    cfg.timing = FaultRig::makeTiming();
    cfg.ftl = FaultRig::makeCfg(/*spares=*/1);
    cfg.fault = quietFaultConfig();
    auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);
    dev->faultInjector().forceEraseFailures(1);

    // Overwrite the 8 logical units for several rounds: GC fires, the
    // planted erase failure retires its victim, and the device rejects
    // everything after that.
    trace::Trace t("overwrite-churn");
    sim::Time now = 0;
    for (int round = 0; round < 8; ++round) {
        for (std::uint32_t lpn = 0; lpn < 8; ++lpn,
                           now += sim::milliseconds(2)) {
            trace::TraceRecord r;
            r.arrival = now;
            r.op = trace::OpType::Write;
            r.lbaSector = units::unitToLba(units::UnitAddr{lpn});
            r.sizeBytes = units::Bytes{sim::kUnitBytes};
            t.push(r);
        }
    }
    host::Replayer rep(s, *dev);
    rep.replay(t);

    ASSERT_TRUE(dev->ftl().readOnly());
    EXPECT_GT(dev->stats().writeRejectedRequests, 0u);
    EXPECT_GT(rep.stats().errorCompletions, 0u);
    EXPECT_GT(rep.stats().failedRequests, 0u);

    // Graceful degradation, not corruption: the full audit stays
    // clean on the read-only device.
    check::AuditReport report = check::auditNow(s, *dev);
    EXPECT_TRUE(report.clean())
        << report.totalViolations() << " violation(s)";
}

TEST(FaultDeterminism, GeneratorIsSeedStable)
{
    const workload::AppProfile *p = workload::findProfile("Booting");
    ASSERT_NE(p, nullptr);
    std::ostringstream a;
    std::ostringstream b;
    workload::TraceGenerator(*p, /*seed=*/21).generate(0.02).save(a);
    workload::TraceGenerator(*p, /*seed=*/21).generate(0.02).save(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(FaultDeterminism, SeededFaultReplayIsByteIdentical)
{
    const workload::AppProfile *p = workload::findProfile("Booting");
    ASSERT_NE(p, nullptr);
    trace::Trace t =
        workload::TraceGenerator(*p, /*seed=*/21).generate(0.02);

    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    opts.fault.enabled = true;
    opts.fault.seed = 5;
    opts.fault.baseRber = 3e-4;
    opts.fault.programFailProb = 1e-3;

    const core::CaseResult r1 =
        core::runCase(t, core::SchemeKind::HPS, opts);
    const core::CaseResult r2 =
        core::runCase(t, core::SchemeKind::HPS, opts);

    // Same seed, same trace: the whole fault sequence and every
    // per-request timestamp replays identically.
    std::ostringstream s1;
    std::ostringstream s2;
    r1.replayed.save(s1);
    r2.replayed.save(s2);
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_EQ(r1.correctedReads, r2.correctedReads);
    EXPECT_EQ(r1.readRetryRounds, r2.readRetryRounds);
    EXPECT_EQ(r1.uncorrectableReads, r2.uncorrectableReads);
    EXPECT_EQ(r1.programFailures, r2.programFailures);
    EXPECT_EQ(r1.relocatedPrograms, r2.relocatedPrograms);
    EXPECT_EQ(r1.retiredBlocks, r2.retiredBlocks);
    EXPECT_EQ(r1.hostRetries, r2.hostRetries);
    EXPECT_DOUBLE_EQ(r1.p99ResponseMs, r2.p99ResponseMs);
    // And the model was actually exercised.
    EXPECT_GT(r1.correctedReads + r1.readRetryRounds, 0u);
}

TEST(FaultDeterminism, ZeroRateInjectionIsTimingNeutral)
{
    const workload::AppProfile *p = workload::findProfile("Booting");
    ASSERT_NE(p, nullptr);
    trace::Trace t =
        workload::TraceGenerator(*p, /*seed=*/21).generate(0.02);

    core::ExperimentOptions off;
    off.capacityScale = 0.05;
    core::ExperimentOptions zero = off;
    zero.fault.enabled = true; // attached, but every rate is zero

    const core::CaseResult r_off =
        core::runCase(t, core::SchemeKind::HPS, off);
    const core::CaseResult r_zero =
        core::runCase(t, core::SchemeKind::HPS, zero);

    // The dormant-neutrality contract: an attached injector with zero
    // fault rates charges no latency and changes no outcome.
    std::ostringstream s_off;
    std::ostringstream s_zero;
    r_off.replayed.save(s_off);
    r_zero.replayed.save(s_zero);
    EXPECT_EQ(s_off.str(), s_zero.str());
    EXPECT_EQ(r_zero.correctedReads, 0u);
    EXPECT_EQ(r_zero.uncorrectableReads, 0u);
    EXPECT_EQ(r_zero.hostRetries, 0u);
    EXPECT_DOUBLE_EQ(r_off.meanResponseMs, r_zero.meanResponseMs);
}
