/**
 * @file
 * Proof that streaming replay holds bounded memory: global operator
 * new/delete are replaced with implementations that track *live* heap
 * bytes, and a long replay must plateau once the chunk buffers, retry
 * ring, and event arena have warmed up — resident heap must not scale
 * with trace length (that is the whole point of TraceSource: a
 * multi-GB capture replays without materializing a record vector).
 * Own binary for the same reason as sim_alloc_test: the replacement
 * operators apply to everything linked with them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "emmc/device.hh"
#include "host/replayer.hh"
#include "trace/source.hh"

namespace {

std::atomic<std::uint64_t> g_liveBytes{0};

// Each block is over-allocated by one max-aligned header holding its
// size, so the unsized delete forms can maintain the live counter.
constexpr std::size_t kHeader = alignof(std::max_align_t);

void *
countedAlloc(std::size_t n)
{
    void *raw = std::malloc(n + kHeader);
    if (raw == nullptr)
        return nullptr;
    *static_cast<std::size_t *>(raw) = n;
    g_liveBytes.fetch_add(n, std::memory_order_relaxed);
    return static_cast<char *>(raw) + kHeader;
}

void
countedFree(void *p)
{
    if (p == nullptr)
        return;
    void *raw = static_cast<char *>(p) - kHeader;
    g_liveBytes.fetch_sub(*static_cast<std::size_t *>(raw),
                          std::memory_order_relaxed);
    std::free(raw);
}

} // namespace

void *
operator new(std::size_t n)
{
    if (void *p = countedAlloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    if (void *p = countedAlloc(n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

namespace {

using namespace emmcsim;

/**
 * Procedural source: one warm-up chunk of writes over a small region,
 * then reads of the same region forever. Snapshots the live-byte
 * counter at every next() call so the test can separate warm-up
 * growth from steady-state drift.
 */
class CountingSource : public trace::TraceSource
{
  public:
    explicit CountingSource(std::size_t total) : total_(total)
    {
        liveMarks_.reserve(total / 1024 + 16);
    }

    const std::string &name() const override { return name_; }

    std::size_t
    next(trace::TraceRecord *out, std::size_t max) override
    {
        liveMarks_.push_back(
            g_liveBytes.load(std::memory_order_relaxed));
        std::size_t n = 0;
        while (n < max && produced_ < total_) {
            const std::size_t i = produced_++;
            trace::TraceRecord r;
            // Keep the device drained: arrivals slower than service
            // keep queue depth (and thus queue storage) bounded.
            r.arrival = static_cast<sim::Time>(i) * 1'000'000; // 1ms
            r.lbaSector = units::Lba{
                (i % kRegionUnits) *
                static_cast<std::uint64_t>(sim::kSectorsPerUnit)};
            r.sizeBytes = units::Bytes{sim::kUnitBytes};
            // First 4096 records write the region; the rest read it.
            r.op = i < 4096 ? trace::OpType::Write : trace::OpType::Read;
            out[n++] = r;
        }
        return n;
    }

    void reset() override { produced_ = 0; }

    const trace::TraceLoadError &error() const override { return err_; }

    /** Live heap bytes observed at each next() call. */
    const std::vector<std::uint64_t> &liveMarks() const
    {
        return liveMarks_;
    }

  private:
    static constexpr std::size_t kRegionUnits = 1024;

    std::string name_ = "counting";
    std::size_t total_;
    std::size_t produced_ = 0;
    std::vector<std::uint64_t> liveMarks_;
    trace::TraceLoadError err_;
};

emmc::EmmcConfig
tinyConfig()
{
    emmc::EmmcConfig cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.pagesPerBlock = 8;
    cfg.geometry.pools = {flash::PoolConfig{4096, 32}};
    cfg.timing.pools = {flash::Timing::page4k()};
    cfg.ftl.opRatio = 0.25;
    return cfg;
}

TEST(StreamReplayAllocation, LiveHeapDoesNotScaleWithTraceLength)
{
    // 24 chunks of 4096 records. Materializing this trace would hold
    // >3.5MB of records; a per-record accumulator (the bug this test
    // guards against) would grow the heap by at least that much over
    // the measurement window.
    constexpr std::size_t kRecords = 24 * 4096;

    sim::Simulator s;
    emmc::EmmcDevice dev(
        s, tinyConfig(),
        std::make_unique<ftl::SinglePoolDistributor>(0, 1, "4PS"));
    host::Replayer rep(s, dev);

    CountingSource src(kRecords);
    const host::StreamReplayResult res = rep.replayStream(src);
    EXPECT_EQ(res.requests, kRecords);

    const std::vector<std::uint64_t> &marks = src.liveMarks();
    // next() is called once per chunk plus a final empty pull.
    ASSERT_GE(marks.size(), 10u);

    // Chunks 0..5 may grow the heap: stream buffers, the retry ring,
    // the event arena, and device scratch all reach steady size. From
    // chunk 6 on, live bytes must plateau — 64KB of slack tolerates
    // container doubling, nowhere near the >700KB a per-record term
    // would add across the remaining ~70k records.
    std::uint64_t peak = 0;
    for (std::size_t i = 7; i < marks.size(); ++i)
        peak = std::max(peak, marks[i]);
    const std::size_t steadyRecords = (marks.size() - 1 - 6) * 4096;
    EXPECT_GT(steadyRecords, 60'000u);
    EXPECT_LT(peak, marks[6] + 64 * 1024)
        << "live heap grew by " << (peak - marks[6]) << " bytes over "
        << steadyRecords << " steady-state records";
}

} // namespace
