/**
 * @file
 * Streaming replay tests: replayStream() must drive the device
 * exactly like replay() on the same records — same counters, same
 * metrics, and (at the library level) a byte-identical run report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/experiment.hh"
#include "emmc/device.hh"
#include "host/replayer.hh"
#include "obs/report.hh"
#include "trace/source.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

emmc::EmmcConfig
tinyConfig()
{
    emmc::EmmcConfig cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.pagesPerBlock = 8;
    cfg.geometry.pools = {flash::PoolConfig{4096, 32}};
    cfg.timing.pools = {flash::Timing::page4k()};
    cfg.ftl.opRatio = 0.25;
    return cfg;
}

std::unique_ptr<emmc::EmmcDevice>
tinyDevice(sim::Simulator &s)
{
    return std::make_unique<emmc::EmmcDevice>(
        s, tinyConfig(),
        std::make_unique<ftl::SinglePoolDistributor>(0, 1, "4PS"));
}

/** Mixed read/write trace with same-tick ties and varied sizes. */
trace::Trace
mixedTrace(std::size_t n)
{
    trace::Trace t("Mixed");
    for (std::size_t i = 0; i < n; ++i) {
        trace::TraceRecord r;
        // Pairs share an arrival tick: ordering between same-tick
        // arrivals is exactly what must match across paths.
        r.arrival = static_cast<sim::Time>(i / 2 * 2000);
        r.lbaSector = units::Lba{((i * 131) % 900) *
                                 static_cast<std::uint64_t>(
                                     sim::kSectorsPerUnit)};
        r.sizeBytes = units::Bytes{(1 + i % 4) * sim::kUnitBytes};
        r.op = i % 3 == 0 ? trace::OpType::Read : trace::OpType::Write;
        t.push(r);
    }
    return t;
}

} // namespace

TEST(StreamReplay, MatchesInMemoryReplay)
{
    const trace::Trace t = mixedTrace(400);

    sim::Simulator s1;
    auto dev1 = tinyDevice(s1);
    host::Replayer rep1(s1, *dev1);
    const trace::Trace out = rep1.replay(t);

    sim::Simulator s2;
    auto dev2 = tinyDevice(s2);
    host::Replayer rep2(s2, *dev2);
    trace::MemoryTraceSource src(t);
    const host::StreamReplayResult sres = rep2.replayStream(src);

    ASSERT_EQ(sres.requests, t.size());
    EXPECT_EQ(sres.writeRequests, t.writeCount());
    EXPECT_EQ(sres.readBytes + sres.writeBytes, t.totalBytes());
    EXPECT_EQ(sres.writeBytes, t.writtenBytes());
    EXPECT_EQ(sres.firstArrival, t[0].arrival);
    EXPECT_EQ(sres.lastArrival, t[t.size() - 1].arrival);

    // Per-record aggregates must agree exactly with the stamped trace:
    // both paths schedule arrivals in the same sequence band, so the
    // device sees an identical event order.
    sim::Time last_finish = 0;
    sim::OnlineStats resp;
    sim::OnlineStats svc;
    for (const auto &r : out.records()) {
        last_finish = std::max(last_finish, r.finish);
        resp.add(sim::toMilliseconds(r.responseTime()));
        svc.add(sim::toMilliseconds(r.serviceTime()));
    }
    EXPECT_EQ(sres.lastFinish, last_finish);
    EXPECT_EQ(sres.responseMs.count(), out.size());
    EXPECT_DOUBLE_EQ(sres.responseMs.mean(), resp.mean());
    EXPECT_DOUBLE_EQ(sres.serviceMs.mean(), svc.mean());
    EXPECT_EQ(sres.responseHistMs.total(), out.size());
}

TEST(StreamReplay, DeterministicAcrossRuns)
{
    const trace::Trace t = mixedTrace(200);
    host::StreamReplayResult r[2];
    for (int i = 0; i < 2; ++i) {
        sim::Simulator s;
        auto dev = tinyDevice(s);
        host::Replayer rep(s, *dev);
        trace::MemoryTraceSource src(t);
        r[i] = rep.replayStream(src);
    }
    EXPECT_EQ(r[0].requests, r[1].requests);
    EXPECT_EQ(r[0].lastFinish, r[1].lastFinish);
    EXPECT_DOUBLE_EQ(r[0].responseMs.mean(), r[1].responseMs.mean());
    EXPECT_DOUBLE_EQ(r[0].serviceMs.mean(), r[1].serviceMs.mean());
}

TEST(StreamReplay, CaseResultColumnsMatchInMemoryPath)
{
    const trace::Trace t = mixedTrace(300);
    core::ExperimentOptions opts;
    opts.capacityScale = 0.02;
    opts.prefill = 0.3;

    const core::CaseResult a = core::runCase(t, core::SchemeKind::HPS,
                                             opts);
    trace::MemoryTraceSource src(t);
    const core::CaseResult b =
        core::runCaseStream(src, core::SchemeKind::HPS, opts);

    EXPECT_EQ(b.traceName, a.traceName);
    EXPECT_EQ(b.requests, a.requests);
    EXPECT_DOUBLE_EQ(b.meanResponseMs, a.meanResponseMs);
    EXPECT_DOUBLE_EQ(b.meanServiceMs, a.meanServiceMs);
    EXPECT_DOUBLE_EQ(b.noWaitPct, a.noWaitPct);
    EXPECT_DOUBLE_EQ(b.writeAmplification, a.writeAmplification);
    EXPECT_EQ(b.pagePrograms, a.pagePrograms);
    EXPECT_EQ(b.pageReads, a.pageReads);
    EXPECT_EQ(b.totalErases, a.totalErases);
    EXPECT_EQ(b.gcRelocatedUnits, a.gcRelocatedUnits);
    EXPECT_EQ(b.packedCommands, a.packedCommands);
    // The streaming path keeps no per-record storage: replayed stays
    // empty and the tail comes from the histogram estimate instead.
    EXPECT_EQ(b.replayed.size(), 0u);
    EXPECT_GE(b.p99ResponseMs, 0.0);
}

TEST(StreamReplay, RunReportByteIdenticalToInMemoryPath)
{
    const trace::Trace t = mixedTrace(300);
    core::ExperimentOptions opts;
    opts.capacityScale = 0.02;
    opts.obs.metrics = true;
    opts.obs.attribution = true;
    opts.obs.sampleWindow = sim::milliseconds(1);

    const core::CaseResult a = core::runCase(t, core::SchemeKind::HPS,
                                             opts);
    trace::MemoryTraceSource src(t);
    const core::CaseResult b =
        core::runCaseStream(src, core::SchemeKind::HPS, opts);

    auto render = [](const core::CaseResult &res) {
        obs::RunReport report;
        report.setMeta("tool", "stream_replay_test");
        report.setMeta("trace", res.traceName);
        report.addRun(res.scheme, res.obs.metrics, res.obs.series,
                      res.obs.attribution);
        std::ostringstream os;
        report.writeJson(os);
        return os.str();
    };
    EXPECT_EQ(render(a), render(b))
        << "streaming replay diverged from the in-memory path";
}
