/**
 * @file
 * BIOtracer instrumentation tests (Section II-B / II-C).
 */

#include <gtest/gtest.h>

#include "core/scheme.hh"
#include "emmc/device.hh"
#include "host/biotracer.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"

using namespace emmcsim;
using namespace emmcsim::host;

namespace {

trace::Trace
stream(std::uint64_t count, sim::Time gap = sim::milliseconds(1))
{
    workload::FixedStreamSpec spec;
    spec.count = count;
    spec.gap = gap;
    return workload::makeFixedStream(spec);
}

} // namespace

TEST(BioTracer, PaperDefaultsFlushEvery300Requests)
{
    BioTracerConfig cfg;
    // 32KB / 109B per record = 300 records per flush ("about 300
    // request records", Section II-A).
    EXPECT_EQ(cfg.bufferBytes / cfg.bytesPerRecord, 300u);
}

TEST(BioTracer, InjectsFlushWrites)
{
    BioTracerStats stats;
    trace::Trace out = instrumentTrace(stream(600), {}, &stats);
    EXPECT_EQ(stats.tracedRequests, 600u);
    EXPECT_EQ(stats.bufferFlushes, 2u);
    EXPECT_EQ(stats.injectedOps, 12u);
    EXPECT_EQ(out.size(), 612u);
    EXPECT_EQ(out.validate(), "");
}

TEST(BioTracer, OverheadMatchesPaperTwoPercent)
{
    BioTracerStats stats;
    instrumentTrace(stream(5000), {}, &stats);
    // 6 extra ops per ~293 requests ~ 2%.
    EXPECT_NEAR(stats.overheadRatio(), 0.02, 0.005);
}

TEST(BioTracer, NoFlushForShortTrace)
{
    BioTracerStats stats;
    trace::Trace out = instrumentTrace(stream(100), {}, &stats);
    EXPECT_EQ(stats.bufferFlushes, 0u);
    EXPECT_EQ(out.size(), 100u);
}

TEST(BioTracer, FlushWritesTargetLogRegion)
{
    BioTracerConfig cfg;
    cfg.bufferBytes = 10 * cfg.bytesPerRecord; // flush every 10 reqs
    BioTracerStats stats;
    trace::Trace out = instrumentTrace(stream(10), cfg, &stats);
    ASSERT_EQ(out.size(), 10u + cfg.flushOps);
    for (std::size_t i = 10; i < out.size(); ++i) {
        EXPECT_TRUE(out[i].isWrite());
        EXPECT_GE(out[i].firstUnit().value(), cfg.logRegionUnit);
        // Flush shares the arrival of the triggering request.
        EXPECT_EQ(out[i].arrival, out[9].arrival);
    }
}

TEST(BioTracer, FlushRegionAdvancesLikeAppendingLog)
{
    BioTracerConfig cfg;
    cfg.bufferBytes = 5 * cfg.bytesPerRecord;
    trace::Trace out = instrumentTrace(stream(10), cfg, nullptr);
    // Two flushes of 6 appends each; log addresses strictly increase.
    std::int64_t last = -1;
    for (const auto &r : out.records()) {
        if (r.firstUnit().value() >= cfg.logRegionUnit) {
            EXPECT_GT(r.firstUnit().value(), last);
            last = r.firstUnit().value();
        }
    }
}

TEST(BioTracer, InstrumentedReplayOverheadIsSmall)
{
    // Replay the same stream bare and instrumented; the makespan
    // penalty should be in the paper's few-percent band.
    auto replay_makespan = [](const trace::Trace &t) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, core::SchemeKind::PS4);
        Replayer rep(s, *dev);
        trace::Trace out = rep.replay(t);
        return out.duration();
    };
    trace::Trace bare = stream(2000, sim::milliseconds(2));
    trace::Trace traced = instrumentTrace(bare);
    sim::Time t_bare = replay_makespan(bare);
    sim::Time t_traced = replay_makespan(traced);
    EXPECT_GE(t_traced, t_bare);
    EXPECT_LT(static_cast<double>(t_traced - t_bare),
              0.05 * static_cast<double>(t_bare));
}
