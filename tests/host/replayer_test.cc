/**
 * @file
 * Replayer tests: timestamp stamping, open-loop arrivals, address
 * wrapping, and agreement with device statistics.
 */

#include <gtest/gtest.h>

#include "emmc/device.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

emmc::EmmcConfig
tinyConfig()
{
    emmc::EmmcConfig cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    cfg.geometry.pagesPerBlock = 8;
    cfg.geometry.pools = {flash::PoolConfig{4096, 32}};
    cfg.timing.pools = {flash::Timing::page4k()};
    cfg.ftl.opRatio = 0.25;
    return cfg;
}

std::unique_ptr<emmc::EmmcDevice>
tinyDevice(sim::Simulator &s)
{
    return std::make_unique<emmc::EmmcDevice>(
        s, tinyConfig(),
        std::make_unique<ftl::SinglePoolDistributor>(0, 1, "4PS"));
}

} // namespace

TEST(Replayer, StampsEveryRecord)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);

    workload::FixedStreamSpec spec;
    spec.count = 10;
    spec.gap = sim::milliseconds(5);
    trace::Trace in = workload::makeFixedStream(spec);
    trace::Trace out = rep.replay(in);

    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(out[i].replayed());
        EXPECT_EQ(out[i].arrival, in[i].arrival);
        EXPECT_GE(out[i].serviceStart, out[i].arrival);
        EXPECT_GT(out[i].finish, out[i].serviceStart);
    }
    EXPECT_EQ(out.validate(), "");
}

TEST(Replayer, InputIsNotMutated)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);
    workload::FixedStreamSpec spec;
    spec.count = 3;
    trace::Trace in = workload::makeFixedStream(spec);
    rep.replay(in);
    for (const auto &r : in.records())
        EXPECT_FALSE(r.replayed());
}

TEST(Replayer, OpenLoopKeepsArrivals)
{
    // Back-to-back arrivals (gap 0) queue up; arrivals stay at 0 and
    // responses grow with queue depth.
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);
    workload::FixedStreamSpec spec;
    spec.count = 8;
    spec.gap = 0;
    trace::Trace out = rep.replay(workload::makeFixedStream(spec));
    for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_EQ(out[i].arrival, 0);
        EXPECT_GE(out[i].responseTime(), out[i - 1].responseTime());
    }
    EXPECT_EQ(dev->stats().noWaitRequests, 1u);
}

TEST(Replayer, WrapsAddressesBeyondLogicalSpace)
{
    sim::Simulator s;
    auto dev = tinyDevice(s); // 512 raw units, 384 logical
    host::Replayer rep(s, *dev);

    trace::Trace in("big-address");
    trace::TraceRecord r;
    r.arrival = 0;
    r.lbaSector = units::unitToLba(units::UnitAddr{1'000'000});
    r.sizeBytes = units::Bytes{sim::kUnitBytes};
    r.op = trace::OpType::Write;
    in.push(r);
    trace::Trace out = rep.replay(in);
    EXPECT_TRUE(out[0].replayed());
    // Device accounting confirms the write landed.
    EXPECT_EQ(dev->ftl().stats().hostUnitsWritten, 1u);
}

TEST(Replayer, DeviceStatsAgreeWithTrace)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);
    workload::FixedStreamSpec spec;
    spec.count = 20;
    spec.gap = sim::milliseconds(2);
    spec.write = true;
    trace::Trace out = rep.replay(workload::makeFixedStream(spec));

    const emmc::DeviceStats &ds = dev->stats();
    EXPECT_EQ(ds.requests, 20u);
    EXPECT_EQ(ds.writeRequests, 20u);

    // Mean response computed from the trace matches the device's.
    double sum = 0.0;
    for (const auto &r : out.records())
        sum += sim::toMilliseconds(r.responseTime());
    EXPECT_NEAR(ds.responseMs.mean(), sum / 20.0, 1e-9);
}

TEST(Replayer, SimultaneousArrivalsServeInTraceOrder)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);

    trace::Trace in("simultaneous");
    for (int i = 0; i < 4; ++i) {
        trace::TraceRecord r;
        r.arrival = 0;
        r.lbaSector = units::unitToLba(units::UnitAddr{i * 8});
        r.sizeBytes = units::Bytes{sim::kUnitBytes};
        r.op = trace::OpType::Read;
        in.push(r);
    }
    trace::Trace out = rep.replay(in);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GE(out[i].serviceStart, out[i - 1].finish);
}

TEST(Replayer, EmptyTraceCompletes)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);
    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(trace::Trace("empty"));
    EXPECT_EQ(out.size(), 0u);
}
