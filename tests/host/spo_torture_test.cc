/**
 * @file
 * SPO torture: hundreds of seeded power cuts injected into real
 * workload replays on a tiny write-through device. After every cut
 * the device recovers through the journal/OOB-scan path; at end of
 * run the WriteDurabilityLedger proves no acknowledged-and-durable
 * write was lost and a full audit revalidates every invariant
 * (DESIGN.md §13).
 *
 * Crash schedules are pure functions of (count, seed, horizon), so a
 * failure names its workload and seed; the harness then shrinks to
 * the single failing tick so the repro is one cut, not eighty.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.hh"
#include "check/durability.hh"
#include "emmc/device.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

emmc::EmmcConfig
tinyConfig()
{
    emmc::EmmcConfig cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.diesPerChip = 1;
    cfg.geometry.planesPerDie = 2;
    // Real app traces carry multi-MB bursts (Booting peaks at ~11.5MB
    // in one request): 256 blocks x 16 pages x 2 planes = 8192 pages
    // (6144 logical units after OP) fits the largest generated request
    // while staying small enough that GC churns constantly.
    cfg.geometry.pagesPerBlock = 16;
    cfg.geometry.pools = {flash::PoolConfig{4096, 256}};
    cfg.timing.pools = {flash::Timing::page4k()};
    cfg.ftl.opRatio = 0.25;
    return cfg;
}

std::unique_ptr<emmc::EmmcDevice>
tinyDevice(sim::Simulator &s)
{
    return std::make_unique<emmc::EmmcDevice>(
        s, tinyConfig(),
        std::make_unique<ftl::SinglePoolDistributor>(0, 1, "4PS"));
}

trace::Trace
genTrace(const std::string &name, double scale, std::uint64_t seed)
{
    const workload::AppProfile *p = workload::findProfile(name);
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator g(*p, seed);
    return g.generate(scale);
}

/** Outcome of one crash-injected replay. */
struct TortureOutcome
{
    std::uint64_t cuts = 0;       ///< power cuts executed
    std::uint64_t tornPages = 0;  ///< programs torn mid-flight
    std::uint64_t reissued = 0;   ///< requests re-sent after power-up
    std::uint64_t lostWrites = 0; ///< ledger violations (must be 0)
    std::uint64_t auditViolations = 0;
    std::string detail; ///< first violation, when any
};

/**
 * Replay @p t on a fresh tiny write-through device with power cuts at
 * @p ticks, then settle the ledger and audit everything.
 */
TortureOutcome
runTorture(const trace::Trace &t, std::vector<sim::Time> ticks,
           bool notify = false)
{
    sim::Simulator s;
    auto dev = tinyDevice(s);

    // Write-through device: every acknowledged write is immediately
    // owed durability across any later crash.
    check::WriteDurabilityLedger ledger(dev->ftl().logicalUnits(),
                                        /*write_through=*/true);
    dev->setTraceHook([&ledger](const emmc::CompletedRequest &c) {
        if (c.ok() && c.request.write)
            ledger.noteAcked(flash::Lpn{c.request.firstUnit().value()},
                             c.request.sizeUnits());
    });

    host::Replayer rep(s, *dev);
    host::ReplayOptions opts;
    opts.spo.ticks = std::move(ticks);
    opts.spo.notify = notify;
    opts.spo.powerOnDelay = sim::milliseconds(1);
    rep.replay(t, opts);

    TortureOutcome out;
    out.cuts = rep.stats().spoEvents;
    out.tornPages = dev->spoStats().tornPages;
    out.reissued = rep.stats().reissuedRequests;

    check::CheckContext ctx("write-durability");
    ledger.verify(dev->ftl(), ctx);
    out.lostWrites = ctx.failures();
    if (!ctx.violations().empty())
        out.detail = ctx.violations().front();

    check::AuditReport audit = check::auditNow(s, *dev);
    out.auditViolations = audit.totalViolations();
    if (out.detail.empty() && !audit.clean()) {
        for (const check::CheckerSummary &c : audit.checkers)
            if (!c.violations.empty()) {
                out.detail = c.name + ": " + c.violations.front();
                break;
            }
    }
    return out;
}

/**
 * Shrink a failing schedule: find the first tick that reproduces a
 * loss or audit violation when injected alone. Returns 0 when no
 * single tick fails (the failure needs the interaction).
 */
sim::Time
shrinkToFailingTick(const trace::Trace &t,
                    const std::vector<sim::Time> &ticks)
{
    for (sim::Time tick : ticks) {
        TortureOutcome one = runTorture(t, {tick});
        if (one.lostWrites > 0 || one.auditViolations > 0)
            return tick;
    }
    return 0;
}

} // namespace

TEST(SpoTorture, HundredsOfSeededCrashesLoseNoAcknowledgedWrite)
{
    struct Leg
    {
        const char *profile;
        double scale;
        std::uint64_t traceSeed;
        std::uint64_t spoSeed;
    };
    // 3 workloads x 80 drawn ticks = 240 seeded crash points; a few
    // may land inside a previous outage and be skipped, so assert on
    // the executed-cut floor of 200 below.
    const Leg legs[] = {
        {"Messaging", 0.1, 2, 11},
        {"Twitter", 0.1, 3, 13},
        {"Booting", 0.05, 5, 17},
    };

    std::uint64_t total_cuts = 0;
    std::uint64_t total_torn = 0;
    std::uint64_t total_reissued = 0;
    for (const Leg &leg : legs) {
        trace::Trace t = genTrace(leg.profile, leg.scale, leg.traceSeed);
        ASSERT_GT(t.duration(), 0);
        std::vector<sim::Time> ticks =
            fault::drawSpoTicks(80, leg.spoSeed, t.duration());

        TortureOutcome out = runTorture(t, ticks);
        total_cuts += out.cuts;
        total_torn += out.tornPages;
        total_reissued += out.reissued;

        if (out.lostWrites > 0 || out.auditViolations > 0) {
            const sim::Time bad = shrinkToFailingTick(t, ticks);
            FAIL() << leg.profile << " (trace seed " << leg.traceSeed
                   << ", spo seed " << leg.spoSeed << "): "
                   << out.lostWrites << " lost write(s), "
                   << out.auditViolations << " audit violation(s) — "
                   << out.detail << " — repro: single tick "
                   << (bad > 0 ? bad : -1)
                   << (bad > 0 ? " ns" : " (needs full schedule)");
        }
    }

    // The torture must actually bite: enough executed cuts, and at
    // least some of them caught a program mid-flight.
    EXPECT_GE(total_cuts, 200u);
    EXPECT_GT(total_torn, 0u);
    EXPECT_GT(total_reissued, 0u);
}

TEST(SpoTorture, NotifiedShutdownTearsNothing)
{
    // POWER_OFF_NOTIFICATION flushes and checkpoints before the rail
    // drops: same schedule, zero torn pages, and still no losses.
    trace::Trace t = genTrace("Messaging", 0.1, 2);
    std::vector<sim::Time> ticks =
        fault::drawSpoTicks(40, 23, t.duration());

    TortureOutcome out = runTorture(t, ticks, /*notify=*/true);
    EXPECT_GE(out.cuts, 30u);
    EXPECT_EQ(out.tornPages, 0u);
    EXPECT_EQ(out.lostWrites, 0u) << out.detail;
    EXPECT_EQ(out.auditViolations, 0u) << out.detail;
}

TEST(SpoTorture, BackToBackCrashesDuringRecoveryAreSkippedSafely)
{
    // Ticks drawn inside another cut's outage window are skipped, not
    // queued: the schedule below packs cuts 100us apart against a 1ms
    // power-on delay, so most land mid-outage.
    trace::Trace t = genTrace("Twitter", 0.05, 7);
    std::vector<sim::Time> ticks;
    const sim::Time start = t.duration() / 4;
    for (int i = 0; i < 20; ++i)
        ticks.push_back(start + i * sim::microseconds(100));

    TortureOutcome out = runTorture(t, ticks);
    EXPECT_GE(out.cuts, 1u);
    EXPECT_LT(out.cuts, 20u);
    EXPECT_EQ(out.lostWrites, 0u) << out.detail;
    EXPECT_EQ(out.auditViolations, 0u) << out.detail;
}
