/**
 * @file
 * Byte-identity regression for the event core: replaying a generated
 * app trace on the HPS scheme must serialize exactly as the golden
 * file produced by the pre-arena event queue. Any change to event
 * ordering (same-tick FIFO, heap tie-breaks, slot recycling) shows up
 * here as a diff, not as a silently shifted figure.
 *
 * Regenerate the golden only for an intentional behaviour change:
 * generate Twitter at scale 0.05 seed 7, replay on HPS, Trace::save.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

TEST(ReplayGolden, TwitterHpsByteIdentical)
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    ASSERT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, 7);
    trace::Trace t = gen.generate(0.05);

    sim::Simulator s;
    auto dev = core::makeDevice(s, core::SchemeKind::HPS);
    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(t);

    std::ostringstream produced;
    out.save(produced);

    const std::string path = std::string(EMMCSIM_TEST_DATA_DIR) +
                             "/golden_replay_twitter_hps.trace";
    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << f.rdbuf();

    ASSERT_EQ(produced.str().size(), golden.str().size())
        << "replay output length diverged from the golden replay";
    EXPECT_EQ(produced.str(), golden.str())
        << "replay output diverged from the golden replay";
}

} // namespace
