// Corpus file for emmclint --self-test: the unordered-iter rule.
// Iterating a hash container has unspecified order, so anything it
// feeds (reports, traces, flash command streams) loses determinism.

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Report {
    std::unordered_map<int, long> byId;
    std::unordered_set<int> seen;
    std::map<int, long> ordered;
    std::vector<int> order;
};

long
sumBad(const Report &r)
{
    long total = 0;
    for (const auto &kv : r.byId) // emmclint-expect: unordered-iter
        total += kv.second;
    for (int v : r.seen) // emmclint-expect: unordered-iter
        total += v;
    return total;
}

long
sumGood(const Report &r)
{
    // Ordered mirror: iterate the insertion-ordered vector and look
    // up in the hash map; or iterate a std::map.
    long total = 0;
    for (int id : r.order)
        total += r.byId.at(id);
    for (const auto &kv : r.ordered)
        total += kv.second;
    return total;
}
