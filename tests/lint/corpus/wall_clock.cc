// Corpus file for emmclint --self-test: the wall-clock rule.
// Simulated time comes from sim::Simulator and randomness from a
// seeded sim::Rng; ambient time or entropy breaks replay.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long
stampBad()
{
    auto t = std::chrono::steady_clock::now(); // emmclint-expect: wall-clock
    (void)t;
    auto w = std::chrono::system_clock::now(); // emmclint-expect: wall-clock
    (void)w;
    long secs = time(nullptr); // emmclint-expect: wall-clock
    return secs + rand(); // emmclint-expect: wall-clock
}

int
seedBad()
{
    std::random_device rd; // emmclint-expect: wall-clock
    srand(42); // emmclint-expect: wall-clock
    return static_cast<int>(rd());
}

long
fine(long sim_now)
{
    // Identifiers containing the banned names must not trip: a
    // member call like sim.time() or words like "brand" are fine.
    long runtime = sim_now;
    long rebrand = runtime;
    return rebrand;
}
