// Corpus file for emmclint --self-test.  The `simpath_` name prefix
// opts this file into event-path scope, as if it lived in src/sim.
// Each `emmclint-expect:` marker names the rule that must fire on
// that exact line; anything else firing is a self-test failure.

#include <functional>
#include <memory>

struct Event {
    int payload;
};

void
scheduleBad()
{
    Event *e = new Event{}; // emmclint-expect: event-path-alloc
    delete e;
    auto u = std::make_unique<Event>(); // emmclint-expect: event-path-alloc
    auto s = std::make_shared<Event>(); // emmclint-expect: event-path-alloc
    (void)u;
    (void)s;
}

// A type-erased callback in the hot path costs an allocation per
// capture plus an indirect call per event.
std::function<void(Event &)> g_cb; // emmclint-expect: event-path-alloc

void
scheduleFine()
{
    // Words like "newline" or "renewal" must not trip the matcher,
    // and neither must mentions of new in comments or strings.
    const char *msg = "allocate with new"; // string literal, ignored
    (void)msg;
    int renewal = 0;
    (void)renewal;
}
