// Corpus file for emmclint --self-test: the raw-unit-param rule.
// Parameters in the lba / lpn / ppn / unit / page / block / sector
// domains must use the strong types from core/units.hh; a raw
// integer reopens the door to sector-vs-unit mix-ups.

#include <cstdint>

void writeAt(std::uint64_t lba); // emmclint-expect: raw-unit-param

void relocate(std::uint64_t ppn, // emmclint-expect: raw-unit-param
              std::int64_t lpn); // emmclint-expect: raw-unit-param

void erase(std::uint32_t block); // emmclint-expect: raw-unit-param

void trim(int64_t unit, int n); // emmclint-expect: raw-unit-param

// Fine: non-domain names, and domain names with non-integer types.
struct Lba;
void writeTyped(const Lba &lba);
void resize(std::uint64_t count, std::uint32_t depth);

// Fine: locals in the domain are allowed (the rule targets API
// surfaces); so are suppressed parameters at a true domain boundary.
void
parseRaw(const char *text,
         // emmclint: allow(raw-unit-param)
         std::uint64_t lba)
{
    (void)text;
    (void)lba;
    std::uint64_t unit = 7;
    (void)unit;
}
