// Corpus header for emmclint --self-test: fully self-contained, so
// the standalone compile probe must pass and report nothing.
#ifndef EMMCSIM_TESTS_LINT_CORPUS_GOOD_HEADER_HH
#define EMMCSIM_TESTS_LINT_CORPUS_GOOD_HEADER_HH

#include <cstdint>
#include <vector>

struct TidyInterface {
    std::vector<std::uint64_t> history;
};

#endif
