// emmclint-expect: header-self-contained
// Corpus header for emmclint --self-test: uses std::vector and
// std::uint64_t without including <vector>/<cstdint>, so a
// standalone compile probe must fail. Any file including something
// else first would mask the missing includes — exactly the
// include-order coupling the rule exists to catch.
#ifndef EMMCSIM_TESTS_LINT_CORPUS_BAD_HEADER_HH
#define EMMCSIM_TESTS_LINT_CORPUS_BAD_HEADER_HH

struct LeakyInterface {
    std::vector<std::uint64_t> history;
};

#endif
