// Corpus file for emmclint --self-test.  The `simpath_` name prefix
// opts this file into event-path scope, as if it lived in src/sim.
// The event core is flat storage; node-based and adapter containers
// must be flagged there, vector-backed structures must not.

#include <map>
#include <queue>
#include <set>
#include <vector>

struct Pending {
    long when;
    int slot;
};

std::map<long, int> g_byTime; // emmclint-expect: event-path-container

std::priority_queue<long> g_pq; // emmclint-expect: event-path-container

void
queueBad()
{
    std::multimap<long, Pending> order; // emmclint-expect: event-path-container
    (void)order;
    std::set<int> live; // emmclint-expect: event-path-container
    (void)live;
}

void
queueFine()
{
    // Flat storage is the idiom the rule protects: a vector heap, a
    // vector-of-vectors wheel, a reusable scratch batch.
    std::vector<Pending> heap;
    std::vector<std::vector<Pending>> wheel;
    std::vector<Pending> batch;
    heap.reserve(64);
    wheel.resize(8);
    batch.clear();
}

// An explicitly justified exception stays possible:
std::multiset<int> g_model; // emmclint: allow(event-path-container)
