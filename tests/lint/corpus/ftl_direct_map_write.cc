// Corpus: durable-ftl-mutation. The "ftl_" filename prefix puts this
// file in the src/ftl (non-gateway) scope, where touching the mapping
// table directly — instead of journalling the change — must fire.

struct FakeMap
{
    void set(int lpn, int ppn);
    void clear(int lpn);
    void resetForRecovery();
};

struct FakeJournal
{
    void recordWrite(int lpn, int ppn);
    void recordTrim(int lpn);
};

struct FakeFtl
{
    FakeMap map_;
    FakeJournal journal_;

    void
    writeDirect()
    {
        map_.set(1, 2); // emmclint-expect: durable-ftl-mutation
    }

    void
    trimDirect()
    {
        map_.clear(1); // emmclint-expect: durable-ftl-mutation
    }

    void
    wipeDirect()
    {
        map_.resetForRecovery(); // emmclint-expect: durable-ftl-mutation
    }

    void
    writeJournalled()
    {
        journal_.recordWrite(1, 2); // clean: the gateway records it
    }

    void
    suppressedDirect()
    {
        // emmclint: allow(durable-ftl-mutation)
        map_.set(3, 4); // clean: explicitly suppressed
    }
};
