// Corpus file for emmclint --self-test: a file with no findings.
// Exercises the suppression comment and the false-positive guards;
// any finding reported here fails the self-test.

#include <cstdint>
#include <unordered_map>
#include <vector>

struct Units; // a *type* named like a domain is fine

// Suppressed on the line above the offender.
// emmclint: allow(raw-unit-param)
void legacyEntryPoint(std::uint64_t lba);

// Suppressed on the offending line itself.
void legacyErase(std::uint32_t block); // emmclint: allow(raw-unit-param)

long
lookupOnly(const std::unordered_map<int, long> &m, int key)
{
    // Point lookups into hash containers are fine; only iteration
    // has unspecified order.
    auto it = m.find(key);
    return it == m.end() ? 0 : it->second;
}

long
iterateOrdered(const std::vector<long> &xs)
{
    long total = 0;
    for (long x : xs)
        total += x;
    return total;
}
