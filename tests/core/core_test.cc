/**
 * @file
 * Core-module tests: scheme factory, report printer, and experiment
 * options plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scheme.hh"

using namespace emmcsim;
using namespace emmcsim::core;

TEST(Scheme, NamesAndOrder)
{
    ASSERT_EQ(allSchemes().size(), 3u);
    EXPECT_EQ(schemeName(allSchemes()[0]), "4PS");
    EXPECT_EQ(schemeName(allSchemes()[1]), "8PS");
    EXPECT_EQ(schemeName(allSchemes()[2]), "HPS");
}

TEST(Scheme, ConfigsMatchKind)
{
    EXPECT_EQ(schemeConfig(SchemeKind::PS4).geometry.pools.size(), 1u);
    EXPECT_EQ(schemeConfig(SchemeKind::PS8).geometry.pools[0].pageBytes,
              8192u);
    EXPECT_EQ(schemeConfig(SchemeKind::HPS).geometry.pools.size(), 2u);
}

TEST(Scheme, DistributorsMatchKind)
{
    EXPECT_EQ(schemeDistributor(SchemeKind::PS4)->name(), "4PS");
    EXPECT_EQ(schemeDistributor(SchemeKind::PS8)->name(), "8PS");
    EXPECT_EQ(schemeDistributor(SchemeKind::HPS)->name(), "HPS");
}

TEST(Scheme, MakeDeviceBuildsWorkingDevice)
{
    sim::Simulator s;
    auto dev = makeDevice(s, SchemeKind::HPS);
    EXPECT_EQ(dev->config().name, "HPS");
    EXPECT_GT(dev->ftl().logicalUnits(), 0u);
}

TEST(ExperimentOptions, ApplyTogglesConfig)
{
    ExperimentOptions opts;
    opts.powerMode = true;
    opts.ramBuffer = true;
    opts.ramBufferUnits = 77;
    opts.packing = false;
    opts.idleGc = true;
    opts.multiplane = true;
    emmc::EmmcConfig cfg =
        applyOptions(schemeConfig(SchemeKind::PS4), opts);
    EXPECT_TRUE(cfg.power.enabled);
    EXPECT_TRUE(cfg.buffer.enabled);
    EXPECT_EQ(cfg.buffer.capacityUnits, 77u);
    EXPECT_FALSE(cfg.packing.enabled);
    EXPECT_TRUE(cfg.idleGcEnabled);
    EXPECT_TRUE(cfg.multiplane);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"Name", "Value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(text.find("----"), std::string::npos);
    // All rows begin at column 0 and "Value" column aligns.
    std::istringstream is(text);
    std::string line;
    std::getline(is, line);
    auto value_col = line.find("Value");
    std::getline(is, line); // separator
    std::getline(is, line);
    EXPECT_EQ(line.find('1'), value_col);
}

TEST(TablePrinter, RowCount)
{
    TablePrinter t({"A"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"x"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TablePrinterDeath, RowWidthMismatch)
{
    TablePrinter t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Fmt, Formats)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(std::uint64_t{42}), "42");
}

TEST(Scheme, ExtendedSchemesIncludeHslc)
{
    ASSERT_EQ(extendedSchemes().size(), 4u);
    EXPECT_EQ(schemeName(extendedSchemes()[3]), "HSLC");
    EXPECT_EQ(schemeDistributor(SchemeKind::HSLC)->name(), "HPS");
}
