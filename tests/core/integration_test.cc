/**
 * @file
 * Cross-module integration tests: the paper's headline relationships
 * must hold end-to-end on scaled-down replays of the real profiles.
 *
 * These use the full Table V devices, so each test constructs a few
 * hundred MB of device state; traces are scaled down to keep runtime
 * in check while preserving the distributions.
 */

#include <gtest/gtest.h>

#include "analysis/characteristics.hh"
#include "analysis/distributions.hh"
#include "analysis/timing_stats.hh"
#include "core/experiment.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::core;

namespace {

trace::Trace
genTrace(const std::string &name, double scale, std::uint64_t seed = 1)
{
    const workload::AppProfile *p = workload::findProfile(name);
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator g(*p, seed);
    return g.generate(scale);
}

} // namespace

TEST(Integration, Fig8HpsBeats4psOnDataIntensiveTrace)
{
    trace::Trace t = genTrace("Booting", 0.05);
    CaseResult r4 = runCase(t, SchemeKind::PS4);
    CaseResult rh = runCase(t, SchemeKind::HPS);
    // The paper reports up to 86% MRT reduction on Booting; at small
    // scale we require at least a decisive win.
    EXPECT_LT(rh.meanResponseMs, 0.6 * r4.meanResponseMs);
}

TEST(Integration, Fig8HpsTracks8psOnResponseTime)
{
    trace::Trace t = genTrace("Booting", 0.05);
    CaseResult r8 = runCase(t, SchemeKind::PS8);
    CaseResult rh = runCase(t, SchemeKind::HPS);
    // "The 8PS scheme has a very similar performance to HPS."
    EXPECT_NEAR(rh.meanResponseMs, r8.meanResponseMs,
                0.15 * r8.meanResponseMs);
}

TEST(Integration, Fig9HpsMatches4psSpaceUtilization)
{
    trace::Trace t = genTrace("Music", 0.1);
    CaseResult r4 = runCase(t, SchemeKind::PS4);
    CaseResult rh = runCase(t, SchemeKind::HPS);
    // HPS always achieves the same space utilization as 4PS (both
    // pay zero padding on 4KB-aligned streams).
    EXPECT_DOUBLE_EQ(r4.spaceUtilization, 1.0);
    EXPECT_DOUBLE_EQ(rh.spaceUtilization, 1.0);
}

TEST(Integration, Fig9EightPsWastesSpaceOnSmallWrites)
{
    trace::Trace t = genTrace("Music", 0.1);
    CaseResult r8 = runCase(t, SchemeKind::PS8);
    // Music is the paper's worst case for 8PS (24.2% HPS advantage);
    // expect clearly sub-unity utilization.
    EXPECT_LT(r8.spaceUtilization, 0.9);
    EXPECT_GT(r8.spaceUtilization, 0.5);
}

TEST(Integration, ReplayedTraceFeedsTimingStats)
{
    trace::Trace t = genTrace("Messaging", 0.2);
    CaseResult res = runCase(t, SchemeKind::PS4);
    analysis::TimingStats ts =
        analysis::computeTimingStats(res.replayed);
    EXPECT_TRUE(ts.replayed);
    EXPECT_NEAR(ts.meanResponseMs, res.meanResponseMs, 1e-6);
    EXPECT_NEAR(ts.noWaitPct, res.noWaitPct, 1e-6);
}

TEST(Integration, PowerModeRaisesServiceTimeOfSparseTrace)
{
    // YouTube has sub-1-req/s arrivals: with power mode on, most
    // requests pay the warm-up inside service time (Characteristic 4).
    trace::Trace t = genTrace("YouTube", 0.2);
    ExperimentOptions off;
    ExperimentOptions on;
    on.powerMode = true;
    CaseResult r_off = runCase(t, SchemeKind::PS4, off);
    CaseResult r_on = runCase(t, SchemeKind::PS4, on);
    EXPECT_GT(r_on.meanServiceMs, r_off.meanServiceMs + 2.0);
    EXPECT_GT(r_on.powerWakeups, 0u);
}

TEST(Integration, PrefillAgesDeviceIntoGc)
{
    // A prefilled device must garbage-collect under write pressure;
    // a brand-new one must not.
    trace::Trace t = genTrace("Installing", 0.05);
    ExperimentOptions fresh;
    fresh.capacityScale = 1.0 / 64.0; // ~512MB device
    ExperimentOptions aged = fresh;
    aged.prefill = 0.7;
    CaseResult r_new = runCase(t, SchemeKind::PS4, fresh);
    CaseResult r_aged = runCase(t, SchemeKind::PS4, aged);
    EXPECT_EQ(r_new.gcBlockingRounds, 0u);
    EXPECT_GT(r_aged.gcBlockingRounds, 0u);
    // GC latency shows up in the aged device's response times.
    EXPECT_GT(r_aged.meanResponseMs, r_new.meanResponseMs);
}

TEST(Integration, PackingImprovesWriteThroughput)
{
    // Packing amortizes the per-command overhead: the same write
    // burst drains sooner (Fig 3's motivation). Per-request MRT can
    // rise because packed requests share the pack's completion time.
    trace::Trace t = genTrace("Radio", 0.1);
    ExperimentOptions packed;
    ExperimentOptions unpacked;
    unpacked.packing = false;
    CaseResult rp = runCase(t, SchemeKind::PS4, packed);
    CaseResult ru = runCase(t, SchemeKind::PS4, unpacked);
    EXPECT_GT(rp.packedCommands, 0u);
    EXPECT_EQ(ru.packedCommands, 0u);
    sim::Time makespan_p = rp.replayed.duration();
    sim::Time makespan_u = ru.replayed.duration();
    EXPECT_LE(makespan_p, makespan_u);
}

TEST(Integration, ResponseDistributionComputableFromCase)
{
    trace::Trace t = genTrace("Twitter", 0.05);
    CaseResult res = runCase(t, SchemeKind::HPS);
    sim::Histogram h = analysis::responseDistribution(res.replayed);
    EXPECT_EQ(h.total(), res.requests);
}

TEST(Integration, E1SlcModeSpeedsUpSmallRequestApps)
{
    // Implication 5: SLC-mode 4KB pool serves the dominant small
    // requests faster than the MLC HPS device, with no padding loss.
    trace::Trace t = genTrace("Messaging", 0.3);
    CaseResult hps = runCase(t, SchemeKind::HPS);
    CaseResult slc = runCase(t, SchemeKind::HSLC);
    EXPECT_LT(slc.meanResponseMs, hps.meanResponseMs);
    EXPECT_DOUBLE_EQ(slc.spaceUtilization, 1.0);
}

TEST(Integration, CharacteristicsHoldOnGeneratedSet)
{
    // Section III's six characteristics must hold on the regenerated
    // individual traces (small scale for test speed).
    ExperimentOptions opts;
    opts.powerMode = true;
    std::vector<trace::Trace> replayed;
    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        workload::TraceGenerator g(p, 3);
        replayed.push_back(
            runCase(g.generate(0.15), SchemeKind::PS4, opts).replayed);
    }
    analysis::CharacteristicsReport rep =
        analysis::evaluateCharacteristics(replayed);
    EXPECT_GE(rep.writeDominant, 14u);   // paper: 15/18
    EXPECT_GE(rep.writeAbove90, 5u);     // paper: 6
    EXPECT_GE(rep.smallMajority, 14u);   // paper: 15/18
    EXPECT_TRUE(rep.noWaitAvailable);
    EXPECT_GE(rep.highNoWait, 11u);      // paper: 15/18 at >=63%
    EXPECT_GE(rep.weakSpatial, 17u);     // paper: all below 48% (YouTube
                                         // sits at 47.6% and can cross
                                         // the line at small scale)
    EXPECT_GE(rep.longMeanGap, 12u);     // paper: 13/18
    EXPECT_GE(rep.heavyGapTail, 10u);    // paper: 10/18
}
