/**
 * @file
 * Snapshot / resume determinism: a run captured mid-flight and
 * continued in a fresh simulator+device must reproduce the
 * uninterrupted run byte for byte — replayed timestamps, derived
 * metrics, and the serialized run-report JSON (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "obs/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::core;

namespace {

trace::Trace
genTrace(const std::string &name, double scale, std::uint64_t seed = 1)
{
    const workload::AppProfile *p = workload::findProfile(name);
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator g(*p, seed);
    return g.generate(scale);
}

/** Serialize a case's metrics exactly as the CLI's --metrics-json. */
std::string
reportJson(const CaseResult &res)
{
    obs::RunReport r;
    r.setMeta("tool", "snapshot_test");
    r.setMeta("trace", res.traceName);
    r.setMeta("scheme", res.scheme);
    r.addRun("replay", res.obs.metrics);
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

void
expectTracesIdentical(const trace::Trace &a, const trace::Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival) << "record " << i;
        EXPECT_EQ(a[i].serviceStart, b[i].serviceStart)
            << "record " << i;
        EXPECT_EQ(a[i].finish, b[i].finish) << "record " << i;
    }
}

} // namespace

TEST(Snapshot, ResumeIsByteIdenticalToUninterruptedRun)
{
    trace::Trace t = genTrace("Messaging", 0.05);
    ASSERT_GT(t.size(), 0u);

    ExperimentOptions opts;
    opts.capacityScale = 1.0 / 64.0;
    opts.obs.metrics = true;
    // Scheduler self-metrics (sim.events.*) count this process's
    // event-core activity, not device state; a resumed run
    // re-schedules its pending events and reports different figures.
    // They are outside the resume-determinism contract.
    opts.obs.eventCore = false;

    CaseResult full = runCase(t, SchemeKind::HPS, opts);

    ExperimentOptions snap_opts = opts;
    snap_opts.snapshotAt = t.duration() / 3;
    CaseResult captured = runCase(t, SchemeKind::HPS, snap_opts);
    ASSERT_FALSE(captured.snapshotImage.empty());

    // The capture itself is passive: the capturing run's outcome is
    // the uninterrupted one.
    expectTracesIdentical(captured.replayed, full.replayed);

    CaseResult resumed =
        resumeCase(t, SchemeKind::HPS, captured.snapshotImage, opts);

    expectTracesIdentical(resumed.replayed, full.replayed);
    EXPECT_DOUBLE_EQ(resumed.meanResponseMs, full.meanResponseMs);
    EXPECT_DOUBLE_EQ(resumed.noWaitPct, full.noWaitPct);
    EXPECT_EQ(resumed.requests, full.requests);

    // The strongest form: the serialized run report (every counter,
    // gauge, summary and histogram) is byte-identical.
    EXPECT_EQ(reportJson(resumed), reportJson(full));
}

TEST(Snapshot, ResumePreservesPrefillBaseline)
{
    // spaceUtilization is measured relative to the post-prefill state;
    // the case image carries that baseline, so a resumed run must
    // report the same figure to the last bit. PS8 pads 4KB writes, so
    // the figure is nontrivially below 1.
    trace::Trace t = genTrace("Music", 0.05);
    ExperimentOptions opts;
    opts.capacityScale = 1.0 / 64.0;
    opts.prefill = 0.3;

    CaseResult full = runCase(t, SchemeKind::PS8, opts);
    EXPECT_LT(full.spaceUtilization, 1.0);

    ExperimentOptions snap_opts = opts;
    snap_opts.snapshotAt = t.duration() / 2;
    CaseResult captured = runCase(t, SchemeKind::PS8, snap_opts);
    ASSERT_FALSE(captured.snapshotImage.empty());

    CaseResult resumed =
        resumeCase(t, SchemeKind::PS8, captured.snapshotImage, opts);
    EXPECT_DOUBLE_EQ(resumed.spaceUtilization, full.spaceUtilization);
    EXPECT_DOUBLE_EQ(resumed.writeAmplification,
                     full.writeAmplification);
    expectTracesIdentical(resumed.replayed, full.replayed);
}

TEST(Snapshot, ResumedRunPassesFinalAudit)
{
    trace::Trace t = genTrace("Twitter", 0.05);
    ExperimentOptions opts;
    opts.capacityScale = 1.0 / 64.0;
    opts.snapshotAt = t.duration() / 2;
    CaseResult captured = runCase(t, SchemeKind::HPS, opts);
    ASSERT_FALSE(captured.snapshotImage.empty());

    ExperimentOptions resume_opts;
    resume_opts.capacityScale = opts.capacityScale;
    resume_opts.auditEveryEvents = 10'000;
    CaseResult resumed = resumeCase(t, SchemeKind::HPS,
                                    captured.snapshotImage,
                                    resume_opts);
    EXPECT_GT(resumed.audit.passes, 0u);
    EXPECT_TRUE(resumed.audit.clean())
        << "post-resume audit found " << resumed.audit.totalViolations()
        << " violation(s)";
}

TEST(Snapshot, GarbageImageIsRejected)
{
    trace::Trace t = genTrace("Messaging", 0.02);
    ExperimentOptions opts;
    opts.capacityScale = 1.0 / 64.0;
    EXPECT_DEATH(resumeCase(t, SchemeKind::HPS, "not a snapshot", opts),
                 "snapshot");
}

TEST(Snapshot, TruncatedImageIsRejected)
{
    trace::Trace t = genTrace("Messaging", 0.02);
    ExperimentOptions opts;
    opts.capacityScale = 1.0 / 64.0;
    opts.snapshotAt = t.duration() / 2;
    CaseResult captured = runCase(t, SchemeKind::HPS, opts);
    ASSERT_FALSE(captured.snapshotImage.empty());

    const std::string truncated = captured.snapshotImage.substr(
        0, captured.snapshotImage.size() / 2);
    ExperimentOptions resume_opts;
    resume_opts.capacityScale = opts.capacityScale;
    EXPECT_DEATH(
        resumeCase(t, SchemeKind::HPS, truncated, resume_opts),
        "snapshot");
}
