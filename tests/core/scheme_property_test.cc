/**
 * @file
 * Scheme-level property sweeps: invariants that must hold for every
 * scheme (including the HSLC extension) on every workload shape.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;
using namespace emmcsim::core;

/** (scheme, write?) sweep on a fixed-size stream. */
class SchemeSweep
    : public ::testing::TestWithParam<std::tuple<SchemeKind, bool>>
{
};

TEST_P(SchemeSweep, ReplayCompletesAndTimestampsAreSane)
{
    auto [kind, write] = GetParam();
    sim::Simulator s;
    auto dev = makeDevice(s, kind);
    workload::FixedStreamSpec spec;
    spec.write = write;
    spec.sizeBytes = sim::kib(20); // the paper's 20KB split example
    spec.count = 40;
    spec.gap = sim::milliseconds(4);
    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(workload::makeFixedStream(spec));

    EXPECT_EQ(out.validate(), "");
    for (const auto &r : out.records()) {
        EXPECT_GE(r.serviceStart, r.arrival);
        EXPECT_GT(r.finish, r.serviceStart);
    }
    if (write) {
        // 20KB = 5 units per request, all mapped afterwards.
        EXPECT_EQ(dev->ftl().stats().hostUnitsWritten, 40u * 5u);
        EXPECT_EQ(dev->ftl().map().mappedCount(), 40u * 5u);
    }
}

TEST_P(SchemeSweep, SpaceConsumptionMatchesAnalyticModel)
{
    auto [kind, write] = GetParam();
    if (!write)
        GTEST_SKIP() << "write-side property";
    sim::Simulator s;
    auto dev = makeDevice(s, kind);
    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = sim::kib(20); // 5 units: odd => 8PS pads
    spec.count = 32;
    spec.gap = sim::milliseconds(4);
    host::Replayer rep(s, *dev);
    rep.replay(workload::makeFixedStream(spec));

    double expect = 1.0;
    if (kind == SchemeKind::PS8)
        expect = 5.0 / 6.0; // ceil(5/2) pages * 8KB = 24KB for 20KB
    EXPECT_NEAR(dev->spaceUtilization(), expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Combine(::testing::Values(SchemeKind::PS4,
                                         SchemeKind::PS8,
                                         SchemeKind::HPS,
                                         SchemeKind::HSLC),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<SchemeKind, bool>>
           &info) {
        return schemeName(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "Write" : "Read");
    });

/** Every scheme must serve every Fig 4 size class correctly. */
class SchemeSizeSweep
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>>
{
};

TEST_P(SchemeSizeSweep, WriteThenReadBackAnySize)
{
    auto [kind, units] = GetParam();
    sim::Simulator s;
    auto dev = makeDevice(s, kind);

    workload::FixedStreamSpec w;
    w.write = true;
    w.sizeBytes = static_cast<std::uint64_t>(units) * sim::kUnitBytes;
    w.count = 6;
    w.gap = sim::milliseconds(50);
    host::Replayer rep(s, *dev);
    rep.replay(workload::makeFixedStream(w));

    // Read the same region back; every unit is mapped, so the read
    // path exercises the mapping-grouped branch.
    sim::Simulator s2;
    (void)s2;
    workload::FixedStreamSpec r = w;
    r.write = false;
    // Continue on the same simulator/device (time keeps advancing).
    trace::Trace read_trace = workload::makeFixedStream(r);
    for (auto &rec : read_trace.records())
        rec.arrival += sim::seconds(100);
    host::Replayer rep2(s, *dev);
    trace::Trace out = rep2.replay(read_trace);
    EXPECT_EQ(out.validate(), "");
    EXPECT_EQ(dev->ftl().stats().hostUnitsRead,
              static_cast<std::uint64_t>(units) * 6u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAcrossSchemes, SchemeSizeSweep,
    ::testing::Combine(::testing::Values(SchemeKind::PS4,
                                         SchemeKind::PS8,
                                         SchemeKind::HPS,
                                         SchemeKind::HSLC),
                       ::testing::Values(1, 2, 3, 5, 8, 16, 64)),
    [](const ::testing::TestParamInfo<std::tuple<SchemeKind, int>>
           &info) {
        return schemeName(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param));
    });
