/**
 * @file
 * core::Sweep tests: pool mechanics, ordered collection, exception
 * propagation, and the headline determinism contract — a sweep's
 * aggregate artifacts are byte-identical for any worker count.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "core/sweep.hh"
#include "obs/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim {
namespace {

TEST(EffectiveJobsTest, NeverReturnsZero)
{
    EXPECT_GE(core::effectiveJobs(0), 1u);
    EXPECT_EQ(core::effectiveJobs(1), 1u);
    EXPECT_EQ(core::effectiveJobs(7), 7u);
}

TEST(ThreadPoolTest, RunsEveryPostedTask)
{
    core::ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.post([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves)
{
    core::ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int wave = 0; wave < 3; ++wave) {
        for (int i = 0; i < 8; ++i)
            pool.post([&done] { done.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(done.load(), (wave + 1) * 8);
    }
}

TEST(RunOrderedTest, ResultsComeBackInSubmissionOrder)
{
    // Early jobs sleep longest, so completion order is roughly the
    // reverse of submission order — the results must not be.
    const std::size_t n = 16;
    std::vector<int> out =
        core::runOrdered(n, 8, [n](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(n - i));
            return static_cast<int>(i * 10);
        });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * 10));
}

TEST(RunOrderedTest, LowestIndexedExceptionWins)
{
    try {
        core::runOrdered(8, 4, [](std::size_t i) -> int {
            if (i == 2 || i == 5)
                throw std::runtime_error("job " + std::to_string(i));
            return 0;
        });
        FAIL() << "expected runOrdered to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 2");
    }
}

TEST(RunOrderedTest, MoveOnlyResultsSupported)
{
    std::vector<std::unique_ptr<int>> out =
        core::runOrdered(4, 2, [](std::size_t i) {
            return std::make_unique<int>(static_cast<int>(i));
        });
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(*out[i], static_cast<int>(i));
}

/** Build the shared small trace all determinism cases replay. */
trace::Trace
smallTrace()
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, /*seed=*/7);
    return gen.generate(0.02);
}

/** The three-scheme sweep used by the determinism tests. */
std::vector<core::SweepCase>
schemeCases(const trace::Trace &t)
{
    std::vector<core::SweepCase> cases;
    for (core::SchemeKind kind : core::allSchemes()) {
        core::SweepCase c;
        c.label = core::schemeName(kind);
        c.trace = &t;
        c.kind = kind;
        c.opts.obs.metrics = true;
        cases.push_back(std::move(c));
    }
    return cases;
}

/** Serialize sweep results the way the CLIs do (run-report JSON). */
std::string
reportJson(const std::vector<core::SweepCase> &cases,
           const std::vector<core::CaseResult> &results)
{
    obs::RunReport report;
    report.setMeta("tool", "sweep_test");
    for (std::size_t i = 0; i < results.size(); ++i)
        report.addRun(cases[i].label, results[i].obs.metrics);
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

TEST(SweepDeterminismTest, ReportJsonIdenticalAcrossWorkerCounts)
{
    const trace::Trace t = smallTrace();
    const std::vector<core::SweepCase> cases = schemeCases(t);

    const std::vector<core::CaseResult> serial =
        core::runCases(cases, 1);
    const std::vector<core::CaseResult> parallel =
        core::runCases(cases, 8);

    ASSERT_EQ(serial.size(), cases.size());
    ASSERT_EQ(parallel.size(), cases.size());
    EXPECT_EQ(reportJson(cases, serial), reportJson(cases, parallel));
}

TEST(SweepDeterminismTest, ScalarResultsIdenticalAcrossWorkerCounts)
{
    const trace::Trace t = smallTrace();
    const std::vector<core::SweepCase> cases = schemeCases(t);

    const std::vector<core::CaseResult> a = core::runCases(cases, 1);
    const std::vector<core::CaseResult> b = core::runCases(cases, 3);

    for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(a[i].scheme, b[i].scheme);
        EXPECT_EQ(a[i].requests, b[i].requests);
        EXPECT_EQ(a[i].meanResponseMs, b[i].meanResponseMs);
        EXPECT_EQ(a[i].meanServiceMs, b[i].meanServiceMs);
        EXPECT_EQ(a[i].spaceUtilization, b[i].spaceUtilization);
        EXPECT_EQ(a[i].pageReads, b[i].pageReads);
        EXPECT_EQ(a[i].pagePrograms, b[i].pagePrograms);
        EXPECT_EQ(a[i].programs4kPool, b[i].programs4kPool);
        EXPECT_EQ(a[i].programs8kPool, b[i].programs8kPool);
        EXPECT_EQ(a[i].writeAmplification, b[i].writeAmplification);
        EXPECT_EQ(a[i].p99ResponseMs, b[i].p99ResponseMs);
    }
}

TEST(SweepDeterminismTest, MergedAggregatesMatchSerialAggregation)
{
    // The sweep's per-worker accumulators are merged on the collector
    // thread; folding per-case percentiles in any grouping must match
    // the all-in-one aggregation.
    const trace::Trace t = smallTrace();
    const std::vector<core::SweepCase> cases = schemeCases(t);
    const std::vector<core::CaseResult> results =
        core::runCases(cases, 4);

    sim::Percentiles all;
    sim::Percentiles left;
    sim::Percentiles right;
    for (std::size_t i = 0; i < results.size(); ++i) {
        sim::Percentiles one;
        for (const auto &r : results[i].replayed.records())
            one.add(sim::toMilliseconds(r.finish - r.arrival));
        all.merge(one);
        (i % 2 == 0 ? left : right).merge(one);
    }
    sim::Percentiles grouped;
    grouped.merge(left);
    grouped.merge(right);
    ASSERT_EQ(grouped.count(), all.count());
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(grouped.percentile(p), all.percentile(p));
}

} // namespace
} // namespace emmcsim
