/**
 * @file
 * Tests for the strong unit types in core/units.hh: conversion
 * semantics, alignment DCHECKs, arithmetic-role restrictions (pinned
 * at compile time), layout guarantees and byte-identical streaming.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <type_traits>
#include <unordered_map>

#include "core/units.hh"

using namespace emmcsim;
using namespace emmcsim::units;

// ---------------------------------------------------------------------------
// Compile-time contract: the role system must *reject* cross-domain
// and role-inappropriate arithmetic. Expression-SFINAE probes turn
// "this must not compile" into static_asserts that run on every
// build, so a relaxation of the operator set cannot land silently.

namespace {

template <class A, class B, class = void>
struct CanAdd : std::false_type
{
};
template <class A, class B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type
{
};

template <class A, class B, class = void>
struct CanSub : std::false_type
{
};
template <class A, class B>
struct CanSub<A, B,
              std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type
{
};

template <class A, class B, class = void>
struct CanEq : std::false_type
{
};
template <class A, class B>
struct CanEq<A, B,
             std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type
{
};

template <class A, class B, class = void>
struct CanMul : std::false_type
{
};
template <class A, class B>
struct CanMul<A, B,
              std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type
{
};

// Addresses: offset and difference exist, address + address does not.
static_assert(CanAdd<Lba, std::uint64_t>::value,
              "address + count must work");
static_assert(!CanAdd<Lba, Lba>::value,
              "address + address must not compile");
static_assert(CanSub<Lba, Lba>::value,
              "address - address (distance) must work");
static_assert(!CanMul<Lba, std::uint64_t>::value,
              "scaling an address must not compile");

// Sizes: add/scale/ratio exist, size + raw offset does not.
static_assert(CanAdd<Bytes, Bytes>::value, "size + size must work");
static_assert(!CanAdd<Bytes, std::uint64_t>::value,
              "size + raw count must not compile");
static_assert(CanMul<Bytes, std::uint64_t>::value,
              "size * count must work");

// Cross-domain mixes never compile, not even comparisons.
static_assert(!CanEq<Lba, UnitAddr>::value,
              "sector and unit addresses must not compare");
static_assert(!CanEq<PageNo, BlockId>::value,
              "page and block addresses must not compare");
static_assert(!CanAdd<Bytes, Lba>::value,
              "bytes + sectors must not compile");
static_assert(!CanSub<UnitAddr, PageNo>::value,
              "logical - physical must not compile");

// No implicit construction from or conversion to raw integers.
static_assert(!std::is_convertible_v<std::uint64_t, Lba>,
              "raw integers must not silently become addresses");
static_assert(!std::is_convertible_v<Lba, std::uint64_t>,
              "addresses must not silently decay to raw integers");

} // namespace

// ---------------------------------------------------------------------------
// Conversions.

TEST(Units, LbaUnitRoundTrip)
{
    const Lba lba{24}; // sector 24 == unit 3
    const UnitAddr u = lbaToUnit(lba);
    EXPECT_EQ(u, UnitAddr{3});
    EXPECT_EQ(unitToLba(u), lba);
}

TEST(Units, LbaToUnitFloorRoundsDown)
{
    EXPECT_EQ(lbaToUnitFloor(Lba{0}), UnitAddr{0});
    EXPECT_EQ(lbaToUnitFloor(Lba{7}), UnitAddr{0});
    EXPECT_EQ(lbaToUnitFloor(Lba{8}), UnitAddr{1});
    EXPECT_EQ(lbaToUnitFloor(Lba{15}), UnitAddr{1});
}

TEST(Units, ByteConversions)
{
    EXPECT_EQ(bytesToUnits(Bytes{8192}), 2u);
    EXPECT_EQ(bytesToUnitsCeil(Bytes{8192}), 2u);
    EXPECT_EQ(bytesToUnitsCeil(Bytes{8193}), 3u);
    EXPECT_EQ(bytesToUnitsCeil(Bytes{1}), 1u);
    EXPECT_EQ(bytesToSectors(Bytes{1024}), 2u);
    EXPECT_EQ(sectorsToBytes(2), Bytes{1024});
    EXPECT_EQ(unitsToBytes(3), Bytes{12288});
}

TEST(Units, PageBlockGeometry)
{
    const std::uint32_t ppb = 16;
    const PageNo p{35}; // block 2, page 3
    EXPECT_EQ(pageToBlock(p, ppb), BlockId{2});
    EXPECT_EQ(pageIndexInBlock(p, ppb), 3u);
    EXPECT_EQ(blockFirstPage(BlockId{2}, ppb), PageNo{32});
    EXPECT_EQ(blockFirstPage(BlockId{2}, ppb) + 3, p);
}

TEST(Units, AlignmentPredicates)
{
    EXPECT_TRUE(isUnitAligned(Bytes{0}));
    EXPECT_TRUE(isUnitAligned(Bytes{4096}));
    EXPECT_FALSE(isUnitAligned(Bytes{4097}));
    EXPECT_TRUE(isUnitAligned(Lba{8}));
    EXPECT_FALSE(isUnitAligned(Lba{9}));
    EXPECT_TRUE(isSectorAligned(Bytes{512}));
    EXPECT_FALSE(isSectorAligned(Bytes{513}));
}

// ---------------------------------------------------------------------------
// Arithmetic semantics.

TEST(Units, AddressOffsetAndDistance)
{
    Lba a{100};
    EXPECT_EQ(a + 8, Lba{108});
    EXPECT_EQ(a - 4, Lba{96});
    EXPECT_EQ(Lba{108} - a, 8u);
    a += 16;
    EXPECT_EQ(a, Lba{116});
    ++a;
    EXPECT_EQ(a, Lba{117});
    Lba old = a++;
    EXPECT_EQ(old, Lba{117});
    EXPECT_EQ(a, Lba{118});
}

TEST(Units, SignedUnitDistanceCanBeNegative)
{
    // UnitAddr is signed (for the -1 sentinel); distances follow.
    EXPECT_EQ(UnitAddr{3} - UnitAddr{5}, -2);
    EXPECT_LT(kNoUnit, UnitAddr{0});
    EXPECT_EQ(kNoUnit.value(), -1);
}

TEST(Units, SizeArithmetic)
{
    Bytes b{4096};
    EXPECT_EQ(b + Bytes{512}, Bytes{4608});
    EXPECT_EQ(b - Bytes{1024}, Bytes{3072});
    EXPECT_EQ(b * 3, Bytes{12288});
    EXPECT_EQ(2 * b, Bytes{8192});
    EXPECT_EQ(b / 2, Bytes{2048});
    EXPECT_EQ(Bytes{12288} / b, 3u);
    EXPECT_EQ(Bytes{4608} % b, Bytes{512});
    b += Bytes{4096};
    EXPECT_EQ(b, Bytes{8192});
}

TEST(Units, UnsignedOverflowWrapsLikeRep)
{
    // The wrapper must not change representation semantics: unsigned
    // reps wrap exactly as the raw integer would (golden replays of
    // the wrap-around replayer path depend on this).
    const std::uint64_t max = ~0ull;
    EXPECT_EQ((Lba{max} + 1).value(), 0u);
    EXPECT_EQ((Lba{0} - 1).value(), max);
    EXPECT_EQ((Bytes{max} + Bytes{2}).value(), 1u);
}

// ---------------------------------------------------------------------------
// Layout and hashing.

TEST(Units, HashSupportsLookupContainers)
{
    std::unordered_map<units::UnitAddr, int> m;
    m[UnitAddr{7}] = 42;
    EXPECT_EQ(m.at(UnitAddr{7}), 42);
    EXPECT_EQ(m.count(UnitAddr{8}), 0u);
    EXPECT_EQ(std::hash<Lba>{}(Lba{9}),
              std::hash<std::uint64_t>{}(9));
}

// ---------------------------------------------------------------------------
// Streaming: the typed fields serialize as the raw number with no
// adornment, so every text format (traces, reports) stays
// byte-identical with the pre-typed code.

TEST(Units, StreamsAsRawValue)
{
    std::ostringstream os;
    os << Lba{123} << ' ' << Bytes{4096} << ' ' << kNoUnit;
    EXPECT_EQ(os.str(), "123 4096 -1");

    std::istringstream is("88 512");
    Lba lba{0};
    Bytes sz{0};
    is >> lba >> sz;
    EXPECT_EQ(lba, Lba{88});
    EXPECT_EQ(sz, Bytes{512});
}

// ---------------------------------------------------------------------------
// DCHECK guards: checked conversions must refuse misaligned input
// loudly. DCHECKs compile out under NDEBUG, so these death tests run
// only in checked builds.

#if EMMCSIM_DCHECKS_ENABLED
TEST(UnitsDeath, LbaToUnitRejectsMisalignment)
{
    EXPECT_DEATH(lbaToUnit(Lba{9}), "non-4KB-aligned");
}

TEST(UnitsDeath, BytesToUnitsRejectsMisalignment)
{
    EXPECT_DEATH(bytesToUnits(Bytes{4097}), "non-4KB-multiple");
}

TEST(UnitsDeath, BytesToSectorsRejectsMisalignment)
{
    EXPECT_DEATH(bytesToSectors(Bytes{513}), "non-sector-multiple");
}

TEST(UnitsDeath, UnitToLbaRejectsSentinel)
{
    EXPECT_DEATH(unitToLba(kNoUnit), "unmapped sentinel");
}
#endif
