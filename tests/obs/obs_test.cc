/**
 * @file
 * Tests for the observability layer (src/obs): registry naming rules
 * and lifecycle, JSON emission, sampler window alignment, tracer
 * determinism, the emmctrace round-trip, and the zero-cost-when-off
 * guarantee (a replay with observability disabled is byte-identical
 * to one that never heard of it).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/sampler.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim {
namespace {

// ---------------------------------------------------------------------
// Registry: naming rules and snapshot lifecycle
// ---------------------------------------------------------------------

TEST(RegistryTest, DuplicateNamePanics)
{
    obs::Registry reg;
    reg.counter("a.b", [] { return std::uint64_t{0}; });
    EXPECT_DEATH(reg.counter("a.b", [] { return std::uint64_t{1}; }),
                 "duplicate metric name");
    // Collisions are checked across kinds, not just per kind.
    EXPECT_DEATH(reg.gauge("a.b", [] { return 0.0; }),
                 "duplicate metric name");
}

TEST(RegistryTest, MalformedNamesPanic)
{
    obs::Registry reg;
    auto zero = [] { return std::uint64_t{0}; };
    EXPECT_DEATH(reg.counter("", zero), "empty metric name");
    EXPECT_DEATH(reg.counter("A.b", zero), "invalid character");
    EXPECT_DEATH(reg.counter("a..b", zero), "empty name segment");
    EXPECT_DEATH(reg.counter(".a", zero), "empty name segment");
    EXPECT_DEATH(reg.counter("a.", zero), "trailing dot");
}

TEST(RegistryTest, CheckNameAcceptsHierarchicalNames)
{
    EXPECT_TRUE(obs::Registry::checkName("ftl.gc.relocated_units")
                    .empty());
    EXPECT_TRUE(obs::Registry::checkName("emmc.queue_depth").empty());
    EXPECT_TRUE(obs::Registry::checkName("flash.pool0.reads").empty());
    EXPECT_FALSE(obs::Registry::checkName("has space").empty());
    EXPECT_FALSE(obs::Registry::checkName("dash-ed").empty());
}

TEST(RegistryTest, SnapshotReadsCurrentValues)
{
    std::uint64_t events = 0;
    double depth = 0.0;
    sim::OnlineStats lat;
    obs::Registry reg;
    reg.counter("test.events", [&] { return events; });
    reg.gauge("test.depth", [&] { return depth; });
    reg.summary("test.latency", &lat);
    sim::Histogram &hist =
        reg.makeHistogram("test.hist", {1.0, 10.0});

    obs::MetricsSnapshot before = reg.snapshot();
    EXPECT_EQ(before.counterValue("test.events"), 0u);
    EXPECT_TRUE(before.hasCounter("test.events"));
    EXPECT_FALSE(before.hasCounter("test.missing"));

    events = 42;
    depth = 3.5;
    lat.add(2.0);
    lat.add(4.0);
    hist.add(0.5);
    hist.add(5.0);

    obs::MetricsSnapshot after = reg.snapshot();
    EXPECT_EQ(after.counterValue("test.events"), 42u);
    EXPECT_DOUBLE_EQ(after.gaugeValue("test.depth"), 3.5);
    const auto *s = after.findSummary("test.latency");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 2u);
    EXPECT_DOUBLE_EQ(s->mean, 3.0);
    ASSERT_EQ(after.histograms.size(), 1u);
    EXPECT_EQ(after.histograms[0].total, 2u);
    // The earlier snapshot is a value copy, unaffected by the updates.
    EXPECT_EQ(before.counterValue("test.events"), 0u);
    EXPECT_EQ(reg.size(), 4u);
}

TEST(RegistryTest, NamesAreSorted)
{
    obs::Registry reg;
    reg.counter("z.last", [] { return std::uint64_t{0}; });
    reg.counter("a.first", [] { return std::uint64_t{0}; });
    reg.gauge("m.middle", [] { return 0.0; });
    const std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "m.middle");
    EXPECT_EQ(names[2], "z.last");
}

// ---------------------------------------------------------------------
// JsonWriter: escaping, number formatting, structure
// ---------------------------------------------------------------------

TEST(JsonWriterTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(obs::JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(obs::JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(obs::JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(obs::JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(obs::JsonWriter::escape(std::string_view("\x01", 1)),
              "\\u0001");
}

TEST(JsonWriterTest, NumbersRoundTrip)
{
    for (double d : {0.0, 0.1, 1.0 / 3.0, 12345.678, 1e-9, -2.5}) {
        const std::string text = obs::JsonWriter::formatNumber(d);
        EXPECT_DOUBLE_EQ(std::stod(text), d) << text;
    }
    // Non-finite values are invalid JSON; the writer neutralizes them.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(obs::JsonWriter::formatNumber(inf), "0");
    EXPECT_EQ(obs::JsonWriter::formatNumber(-inf), "0");
}

TEST(JsonWriterTest, EmitsBalancedStructure)
{
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.beginObject();
    w.field("name", "run");
    w.key("values").beginArray();
    w.value(std::uint64_t{1}).value(2.5).value(true);
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(out.str(), "{\"name\":\"run\",\"values\":[1,2.5,true]}");
}

TEST(JsonWriterTest, StructuralMisusePanics)
{
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.beginObject();
    // A bare value inside an object (no key) is an exporter bug.
    EXPECT_DEATH(w.value(std::uint64_t{1}), "");
}

// ---------------------------------------------------------------------
// Sampler: lazy window alignment
// ---------------------------------------------------------------------

TEST(SamplerTest, SamplesOncePerElapsedBoundary)
{
    std::uint64_t v = 0;
    obs::Registry reg;
    reg.counter("test.count", [&] { return v; });
    obs::Sampler s(reg, 100);

    v = 1;
    s.observe(50); // before the first boundary: nothing recorded
    EXPECT_EQ(s.windows(), 0u);

    v = 2;
    s.observe(100); // boundary 100
    EXPECT_EQ(s.windows(), 1u);

    v = 5;
    s.observe(350); // catches up boundaries 200 and 300
    EXPECT_EQ(s.windows(), 3u);

    const obs::SeriesSet series = s.series();
    EXPECT_EQ(series.window, 100u);
    ASSERT_EQ(series.names.size(), 1u);
    EXPECT_EQ(series.names[0], "test.count");
    ASSERT_EQ(series.values.size(), 1u);
    // Counters are monotonic: the first observation at-or-after a
    // boundary carries the boundary's value.
    EXPECT_EQ(series.values[0],
              (std::vector<double>{2.0, 5.0, 5.0}));
}

TEST(SamplerTest, FinishRecordsPartialWindow)
{
    std::uint64_t v = 0;
    obs::Registry reg;
    reg.counter("test.count", [&] { return v; });
    obs::Sampler s(reg, 100);

    v = 3;
    s.observe(120); // boundary 100
    v = 7;
    s.finish(450); // boundaries 200..400, then the partial [400, 450)
    EXPECT_EQ(s.windows(), 5u);
    EXPECT_EQ(s.series().values[0],
              (std::vector<double>{3.0, 7.0, 7.0, 7.0, 7.0}));
}

TEST(SamplerTest, FinishOnExactBoundaryAddsNoPartial)
{
    std::uint64_t v = 9;
    obs::Registry reg;
    reg.counter("test.count", [&] { return v; });
    obs::Sampler s(reg, 100);
    s.finish(300); // boundaries 100, 200, 300 — nothing in between
    EXPECT_EQ(s.windows(), 3u);
}

// ---------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------

obs::MetricsSnapshot
tinySnapshot()
{
    std::uint64_t v = 11;
    obs::Registry reg;
    reg.counter("test.count", [&] { return v; });
    reg.gauge("test.depth", [] { return 1.5; });
    return reg.snapshot();
}

TEST(RunReportTest, EmitsSchemaMetaAndRuns)
{
    obs::RunReport report;
    report.setMeta("tool", "obs_test");
    report.setMeta("requests", std::uint64_t{7});
    report.addRun("only", tinySnapshot());
    EXPECT_EQ(report.runCount(), 1u);

    std::ostringstream out;
    report.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"schema\":\"emmcsim-run-report-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tool\":\"obs_test\""), std::string::npos);
    EXPECT_NE(json.find("\"requests\":7"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"only\""), std::string::npos);
    EXPECT_NE(json.find("\"test.count\":11"), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(RunReportTest, MetaLastSetWins)
{
    obs::RunReport report;
    report.setMeta("tool", "first");
    report.setMeta("tool", "second");
    std::ostringstream out;
    report.writeJson(out);
    EXPECT_EQ(out.str().find("first"), std::string::npos);
    EXPECT_NE(out.str().find("\"tool\":\"second\""),
              std::string::npos);
}

TEST(RunReportTest, DuplicateRunNamePanics)
{
    obs::RunReport report;
    report.addRun("dup", tinySnapshot());
    EXPECT_DEATH(report.addRun("dup", tinySnapshot()), "dup");
}

// ---------------------------------------------------------------------
// End-to-end: tracer determinism, round-trip, zero-cost-when-off
// ---------------------------------------------------------------------

trace::Trace
smallTrace()
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, /*seed=*/7);
    return gen.generate(0.05);
}

core::CaseResult
replayObserved(const trace::Trace &t)
{
    core::ExperimentOptions opts;
    opts.obs.metrics = true;
    opts.obs.traceSpans = true;
    opts.obs.sampleWindow = sim::milliseconds(100);
    return core::runCase(t, core::SchemeKind::PS4, opts);
}

std::string
serialize(const trace::Trace &t)
{
    std::ostringstream os;
    t.save(os);
    return os.str();
}

TEST(ObsEndToEndTest, MetricsMatchCaseResult)
{
    const trace::Trace t = smallTrace();
    const core::CaseResult res = replayObserved(t);
    ASSERT_TRUE(res.obs.enabled);
    EXPECT_EQ(res.obs.metrics.counterValue("emmc.requests"),
              res.requests);
    EXPECT_TRUE(res.obs.metrics.hasCounter("ftl.gc.relocated_units"));
    EXPECT_TRUE(res.obs.metrics.hasCounter("fault.reads_evaluated"));
    EXPECT_TRUE(res.obs.metrics.hasCounter("flash.reads"));
    const auto *resp = res.obs.metrics.findSummary("emmc.response_ms");
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->count, res.requests);
    EXPECT_NEAR(resp->mean, res.meanResponseMs,
                1e-9 * std::max(1.0, res.meanResponseMs));
    EXPECT_GT(res.obs.series.windows(), 0u);
}

TEST(ObsEndToEndTest, TracerExportsAreDeterministic)
{
    const trace::Trace t = smallTrace();
    const core::CaseResult a = replayObserved(t);
    const core::CaseResult b = replayObserved(t);
    ASSERT_FALSE(a.obs.chromeTrace.empty());
    ASSERT_FALSE(a.obs.biotracerTrace.empty());
    // Two identical seeded runs must produce byte-identical exports.
    EXPECT_EQ(a.obs.chromeTrace, b.obs.chromeTrace);
    EXPECT_EQ(a.obs.biotracerTrace, b.obs.biotracerTrace);
}

TEST(ObsEndToEndTest, BiotracerExportRoundTripsThroughTrace)
{
    const trace::Trace t = smallTrace();
    const core::CaseResult res = replayObserved(t);

    std::istringstream is(res.obs.biotracerTrace);
    trace::Trace parsed;
    trace::TraceLoadError error;
    ASSERT_TRUE(trace::Trace::tryLoad(is, parsed, error))
        << error.reason;
    EXPECT_EQ(parsed.name(), t.name());
    ASSERT_EQ(parsed.size(), res.replayed.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const trace::TraceRecord &got = parsed[i];
        const trace::TraceRecord &want = res.replayed[i];
        EXPECT_EQ(got.arrival, want.arrival) << "record " << i;
        EXPECT_EQ(got.lbaSector, want.lbaSector) << "record " << i;
        EXPECT_EQ(got.sizeBytes, want.sizeBytes) << "record " << i;
        EXPECT_EQ(got.op, want.op) << "record " << i;
        EXPECT_EQ(got.serviceStart, want.serviceStart)
            << "record " << i;
        EXPECT_EQ(got.finish, want.finish) << "record " << i;
    }
}

TEST(ObsEndToEndTest, ZeroCostWhenOff)
{
    const trace::Trace t = smallTrace();
    // Plain replay, exactly as the pre-observability code ran it.
    const core::CaseResult off =
        core::runCase(t, core::SchemeKind::PS4, {});
    EXPECT_FALSE(off.obs.enabled);
    EXPECT_TRUE(off.obs.chromeTrace.empty());
    // Fully instrumented replay of the same trace.
    const core::CaseResult on = replayObserved(t);
    // Observability must not perturb the simulation: every replayed
    // timestamp (and hence the serialized trace) is byte-identical.
    EXPECT_EQ(serialize(off.replayed), serialize(on.replayed));
    EXPECT_DOUBLE_EQ(off.meanResponseMs, on.meanResponseMs);
    EXPECT_EQ(off.gcBlockingRounds, on.gcBlockingRounds);
    EXPECT_EQ(off.totalErases, on.totalErases);
}

} // namespace
} // namespace emmcsim
