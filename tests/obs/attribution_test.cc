/**
 * @file
 * Tests for latency attribution (DESIGN.md §14): the per-request
 * conservation invariant under plain, fault-injected and power-cut
 * traffic; the AttributionRecorder's aggregation; the report schema
 * contract (the "attribution" key only exists when the mode is on);
 * the Chrome-trace phase tiling; the JSON reader; locale-independent
 * number formatting; and the explain/diff golden outputs on a
 * checked-in report pair.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/scheme.hh"
#include "emmc/device.hh"
#include "fault/spo.hh"
#include "host/replayer.hh"
#include "obs/attribution.hh"
#include "obs/explain.hh"
#include "obs/json.hh"
#include "obs/json_read.hh"
#include "obs/report.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim {
namespace {

trace::Trace
makeTrace(const char *profile, std::uint64_t seed, double scale)
{
    const workload::AppProfile *p = workload::findProfile(profile);
    EXPECT_NE(p, nullptr);
    workload::TraceGenerator gen(*p, seed);
    return gen.generate(scale);
}

// ---------------------------------------------------------------------
// Conservation: phases sum exactly to finish - arrival, per request
// ---------------------------------------------------------------------

/** Replay with a hook asserting conservation on every completion. */
void
replayCheckingEveryCompletion(core::SchemeKind kind,
                              const core::ExperimentOptions &opts,
                              const trace::Trace &t)
{
    sim::Simulator s;
    emmc::EmmcConfig cfg =
        core::applyOptions(core::schemeConfig(kind), opts);
    auto dev = core::makeDevice(s, kind, cfg);
    std::uint64_t seen = 0;
    dev->setTraceHook([&seen](const emmc::CompletedRequest &c) {
        ++seen;
        EXPECT_EQ(c.phases.total(), c.finish - c.request.arrival)
            << "request " << c.request.id;
        EXPECT_GE(c.finish, c.serviceStart);
        EXPECT_GE(c.serviceStart, c.request.arrival);
    });
    host::Replayer rep(s, *dev);
    rep.replay(t);
    EXPECT_GT(seen, 0u);
    EXPECT_EQ(dev->stats().ledgerViolations, 0u);
}

TEST(PhaseConservationTest, EveryCompletionSumsExactly)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    for (core::SchemeKind kind :
         {core::SchemeKind::HPS, core::SchemeKind::PS4}) {
        core::ExperimentOptions opts;
        opts.capacityScale = 0.05;
        replayCheckingEveryCompletion(kind, opts, t);
    }
}

TEST(PhaseConservationTest, HoldsUnderFaultInjection)
{
    // RBER above the ECC threshold so the retry ladder (and its Retry
    // phase) actually runs on the critical chain.
    const trace::Trace t = makeTrace("GoogleMaps", 11, 0.05);
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    opts.fault.enabled = true;
    opts.fault.baseRber = 5e-4;
    replayCheckingEveryCompletion(core::SchemeKind::HPS, opts, t);
}

TEST(PhaseConservationTest, HoldsWithPowerModeAndBuffer)
{
    const trace::Trace t = makeTrace("Messaging", 13, 0.05);
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    opts.powerMode = true;
    opts.ramBuffer = true;
    replayCheckingEveryCompletion(core::SchemeKind::PS4, opts, t);
}

/**
 * Property sweep through runCase: plain, aged (GC), fault-injected and
 * power-cut replays must all keep the audit (which includes the
 * phase-conservation checker) clean and the violation counter at zero.
 */
TEST(PhaseConservationTest, RunCasePropertySweep)
{
    struct Config
    {
        const char *name;
        const char *profile;
        std::uint64_t seed;
        void (*tweak)(core::ExperimentOptions &, const trace::Trace &);
    };
    const Config configs[] = {
        {"plain", "Twitter", 7,
         [](core::ExperimentOptions &, const trace::Trace &) {}},
        {"aged", "Booting", 3,
         [](core::ExperimentOptions &o, const trace::Trace &) {
             o.prefill = 0.5;
             o.idleGc = true;
         }},
        {"fault", "GoogleMaps", 5,
         [](core::ExperimentOptions &o, const trace::Trace &) {
             o.fault.enabled = true;
             o.fault.baseRber = 5e-4;
         }},
        {"spo", "Messaging", 9,
         [](core::ExperimentOptions &o, const trace::Trace &t) {
             o.spo.ticks = fault::drawSpoTicks(3, 21, t.duration());
             o.spo.powerOnDelay = sim::milliseconds(1);
         }},
    };

    for (const Config &c : configs) {
        SCOPED_TRACE(c.name);
        const trace::Trace t = makeTrace(c.profile, c.seed, 0.05);
        core::ExperimentOptions opts;
        opts.capacityScale = 0.05;
        opts.auditEveryEvents = 5000;
        opts.obs.attribution = true;
        c.tweak(opts, t);
        const core::CaseResult res =
            core::runCase(t, core::SchemeKind::HPS, opts);

        EXPECT_TRUE(res.audit.clean())
            << res.audit.totalViolations() << " violation(s)";
        ASSERT_TRUE(res.obs.attribution.enabled);
        EXPECT_EQ(res.obs.attribution.ledgerViolations, 0u);
        EXPECT_GT(res.obs.attribution.requests, 0u);

        // Conservation in aggregate: the per-phase means sum to the
        // mean response time (to fp rounding of the ns -> ms divides).
        double phase_mean_sum = 0.0;
        for (const obs::PhaseDist &d : res.obs.attribution.phases)
            phase_mean_sum += d.meanMs;
        const double resp = res.obs.attribution.response.meanMs;
        EXPECT_NEAR(phase_mean_sum, resp,
                    1e-9 * std::max(1.0, resp));
    }
}

// ---------------------------------------------------------------------
// Recorder aggregation invariants
// ---------------------------------------------------------------------

core::CaseResult
replayAttributed(const trace::Trace &t,
                 core::SchemeKind kind = core::SchemeKind::PS4)
{
    core::ExperimentOptions opts;
    opts.obs.metrics = true;
    opts.obs.attribution = true;
    return core::runCase(t, kind, opts);
}

TEST(AttributionSummaryTest, AggregatesMatchMetrics)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    const core::CaseResult res = replayAttributed(t);
    const obs::AttributionSummary &a = res.obs.attribution;

    ASSERT_TRUE(a.enabled);
    EXPECT_EQ(a.version, obs::kAttributionVersion);
    EXPECT_EQ(a.requests, res.requests);
    EXPECT_EQ(a.response.hits, res.requests);
    EXPECT_NEAR(a.response.meanMs, res.meanResponseMs,
                1e-9 * std::max(1.0, res.meanResponseMs));
    EXPECT_GE(a.response.maxMs, a.response.p999Ms);
    EXPECT_GE(a.response.p999Ms, a.response.p99Ms);
    EXPECT_GE(a.response.p99Ms, a.response.p95Ms);
    EXPECT_GE(a.response.p95Ms, a.response.p50Ms);
    EXPECT_EQ(a.mount.powerCuts, 0u);
    EXPECT_EQ(a.mount.totalMs, 0.0);
}

TEST(AttributionSummaryTest, TailSlicesNestAndStayPopulated)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    const obs::AttributionSummary &a =
        replayAttributed(t).obs.attribution;

    ASSERT_EQ(a.tails.size(), 4u);
    EXPECT_EQ(a.tails[0].quantile, 50.0);
    EXPECT_EQ(a.tails[3].quantile, 99.9);
    for (std::size_t i = 0; i < a.tails.size(); ++i) {
        const obs::TailSlice &s = a.tails[i];
        EXPECT_GT(s.requests, 0u);
        // Tail means decompose the tail's response time: their sum is
        // at least the slice threshold.
        double sum = 0.0;
        for (double m : s.meanPhaseMs)
            sum += m;
        EXPECT_GE(sum, s.thresholdMs - 1e-9);
        if (i > 0) {
            EXPECT_GE(s.thresholdMs, a.tails[i - 1].thresholdMs);
            EXPECT_LE(s.requests, a.tails[i - 1].requests);
        }
    }
}

TEST(AttributionSummaryTest, SlowestRequestsSortedWithExactLedgers)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    const obs::AttributionSummary &a =
        replayAttributed(t).obs.attribution;

    ASSERT_FALSE(a.slowest.empty());
    EXPECT_LE(a.slowest.size(), 10u);
    EXPECT_NEAR(a.slowest.front().responseMs, a.response.maxMs,
                1e-12);
    for (std::size_t i = 0; i < a.slowest.size(); ++i) {
        const obs::SlowRequest &s = a.slowest[i];
        double sum = 0.0;
        for (double m : s.phaseMs)
            sum += m;
        EXPECT_NEAR(sum, s.responseMs,
                    1e-9 * std::max(1.0, s.responseMs))
            << "slowest[" << i << "] id " << s.id;
        if (i > 0) {
            EXPECT_LE(s.responseMs, a.slowest[i - 1].responseMs);
        }
    }
}

TEST(AttributionSummaryTest, MountCostSurfacesAfterPowerCuts)
{
    const trace::Trace t = makeTrace("Messaging", 9, 0.05);
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05;
    opts.obs.attribution = true;
    opts.spo.ticks = fault::drawSpoTicks(3, 21, t.duration());
    opts.spo.powerOnDelay = sim::milliseconds(1);
    const core::CaseResult res =
        core::runCase(t, core::SchemeKind::HPS, opts);

    const obs::MountSummary &m = res.obs.attribution.mount;
    EXPECT_EQ(m.powerCuts, res.spoEvents);
    EXPECT_GT(m.powerCuts, 0u);
    EXPECT_GT(m.totalMs, 0.0);
    EXPECT_NEAR(m.totalMs, res.recoveryTimeMs,
                1e-9 * std::max(1.0, res.recoveryTimeMs));
    // The recovery phases decompose the mount total.
    const double parts = m.checkpointLoadMs + m.journalReplayMs +
                         m.scanMs + m.reEraseMs + m.checkpointWriteMs;
    EXPECT_NEAR(parts, m.totalMs, 1e-9 * std::max(1.0, m.totalMs));
}

TEST(AttributionSummaryTest, RecorderIsDeterministic)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    const obs::AttributionSummary a =
        replayAttributed(t).obs.attribution;
    const obs::AttributionSummary b =
        replayAttributed(t).obs.attribution;
    ASSERT_EQ(a.slowest.size(), b.slowest.size());
    for (std::size_t i = 0; i < a.slowest.size(); ++i)
        EXPECT_EQ(a.slowest[i].id, b.slowest[i].id);
    for (std::size_t p = 0; p < emmc::kPhaseCount; ++p)
        EXPECT_EQ(a.phases[p].totalMs, b.phases[p].totalMs);
}

// ---------------------------------------------------------------------
// Zero cost when off: no schema change, no perturbation
// ---------------------------------------------------------------------

TEST(AttributionOffTest, ReplayIsByteIdentical)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    const core::CaseResult off =
        core::runCase(t, core::SchemeKind::PS4, {});
    const core::CaseResult on = replayAttributed(t);

    std::ostringstream so;
    std::ostringstream sn;
    off.replayed.save(so);
    on.replayed.save(sn);
    EXPECT_EQ(so.str(), sn.str());
    EXPECT_DOUBLE_EQ(off.meanResponseMs, on.meanResponseMs);
    EXPECT_EQ(off.totalErases, on.totalErases);
}

TEST(AttributionOffTest, ReportOmitsAttributionSection)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.02);
    core::ExperimentOptions opts;
    opts.obs.metrics = true;

    // attribution off: the report must not even mention the key, so
    // pre-attribution consumers see byte-identical documents.
    core::CaseResult res = core::runCase(t, core::SchemeKind::PS4, opts);
    obs::RunReport report;
    report.addRun("run", res.obs.metrics);
    std::ostringstream off;
    report.writeJson(off);
    EXPECT_EQ(off.str().find("attribution"), std::string::npos);

    // attribution on: the versioned section appears.
    opts.obs.attribution = true;
    res = core::runCase(t, core::SchemeKind::PS4, opts);
    obs::RunReport report_on;
    report_on.addRun("run", res.obs.metrics, {}, res.obs.attribution);
    std::ostringstream on;
    report_on.writeJson(on);
    EXPECT_NE(on.str().find("\"attribution\":{\"version\":1"),
              std::string::npos);
    EXPECT_NE(on.str().find("\"ledger_violations\":0"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Chrome trace: phase sub-spans tile the request spans exactly
// ---------------------------------------------------------------------

TEST(TracerPhaseSpanTest, PhaseSlicesTileServiceSpans)
{
    const trace::Trace t = makeTrace("Twitter", 7, 0.05);
    core::ExperimentOptions opts;
    opts.obs.traceSpans = true;
    const core::CaseResult res =
        core::runCase(t, core::SchemeKind::PS4, opts);
    ASSERT_FALSE(res.obs.chromeTrace.empty());

    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::JsonValue::parse(res.obs.chromeTrace, doc, err))
        << err;
    const obs::JsonValue &events = doc.at("traceEvents");

    struct Span
    {
        double ts = 0.0;
        double dur = 0.0;
        double phaseSum = 0.0;
        bool seen = false;
    };
    std::vector<Span> spans;
    auto spanFor = [&spans](std::uint64_t id) -> Span & {
        if (id >= spans.size())
            spans.resize(id + 1);
        return spans[id];
    };

    std::size_t phase_slices = 0;
    for (const obs::JsonValue &ev : events.items()) {
        const obs::JsonValue *cat = ev.find("cat");
        if (cat == nullptr || ev.at("ph").asString() != "X")
            continue;
        if (cat->asString() == "request") {
            Span &s = spanFor(ev.at("args").at("id").asUInt());
            s.ts = ev.at("ts").asDouble();
            s.dur = ev.at("dur").asDouble();
            s.seen = true;
        } else if (cat->asString() == "phase") {
            ++phase_slices;
            Span &s = spanFor(ev.at("args").at("id").asUInt());
            s.phaseSum += ev.at("dur").asDouble();
            EXPECT_GT(ev.at("dur").asDouble(), 0.0);
        }
    }
    EXPECT_GT(phase_slices, 0u);

    // Conservation makes the service-side tiling exact: per request,
    // the phase slices sum to the span duration (timestamps are
    // ns-precise microseconds, so allow 1 ns of fp slack per request).
    std::size_t checked = 0;
    for (const Span &s : spans) {
        if (!s.seen || s.dur <= 0.0)
            continue;
        ++checked;
        EXPECT_NEAR(s.phaseSum, s.dur, 1e-3);
    }
    EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------
// JsonValue reader
// ---------------------------------------------------------------------

TEST(JsonReadTest, ParsesWriterOutput)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("name", "run \"a\"\n");
    w.field("count", std::uint64_t{42});
    w.field("mean", 2.5);
    w.field("on", true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1}).value(std::uint64_t{2});
    w.endArray();
    w.endObject();

    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::JsonValue::parse(os.str(), v, err)) << err;
    EXPECT_EQ(v.at("name").asString(), "run \"a\"\n");
    EXPECT_EQ(v.at("count").asUInt(), 42u);
    EXPECT_DOUBLE_EQ(v.at("mean").asDouble(), 2.5);
    EXPECT_TRUE(v.at("on").asBool());
    ASSERT_EQ(v.at("list").items().size(), 2u);
    EXPECT_EQ(v.at("list").items()[1].asUInt(), 2u);
    // Member order is document order.
    ASSERT_EQ(v.members().size(), 5u);
    EXPECT_EQ(v.members()[0].first, "name");
    EXPECT_EQ(v.members()[4].first, "list");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("mean", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);
}

TEST(JsonReadTest, ParsesEscapesAndLiterals)
{
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::JsonValue::parse(
        R"({"s":"aA\t\\","n":null,"f":false,"neg":-1.5e2})", v,
        err))
        << err;
    EXPECT_EQ(v.at("s").asString(), "aA\t\\");
    EXPECT_TRUE(v.at("n").isNull());
    EXPECT_FALSE(v.at("f").asBool());
    EXPECT_DOUBLE_EQ(v.at("neg").asDouble(), -150.0);
}

TEST(JsonReadTest, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",            // empty
        "{",           // unterminated object
        "[1,]",        // trailing comma
        "{\"a\":}",    // missing value
        "{\"a\":1} x", // trailing content
        "tru",         // broken literal
        "\"ab",        // unterminated string
        "01",          // leading zero
        "nan",         // non-finite
    };
    for (const char *text : bad) {
        obs::JsonValue v;
        std::string err;
        EXPECT_FALSE(obs::JsonValue::parse(text, v, err)) << text;
        EXPECT_FALSE(err.empty()) << text;
        // Diagnostics carry a byte offset.
        EXPECT_NE(err.find("byte"), std::string::npos) << err;
    }
}

TEST(JsonReadTest, EnforcesDepthBound)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    obs::JsonValue v;
    std::string err;
    EXPECT_FALSE(obs::JsonValue::parse(deep, v, err));
    EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Locale-independent number formatting
// ---------------------------------------------------------------------

TEST(NumberFormatTest, FixedPointIsStable)
{
    EXPECT_EQ(obs::JsonWriter::formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(obs::JsonWriter::formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(obs::JsonWriter::formatFixed(2.0, 0), "2");
    EXPECT_EQ(obs::JsonWriter::formatFixed(0.0, 4), "0.0000");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(obs::JsonWriter::formatFixed(inf, 2), "0");
}

TEST(NumberFormatTest, IgnoresHostLocale)
{
    // Under a comma-decimal locale, printf-family formatting would
    // emit "2,5"; the to_chars funnel must not.
    const char *prev = std::setlocale(LC_ALL, nullptr);
    const std::string saved = prev != nullptr ? prev : "C";
    const bool have_locale =
        std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr ||
        std::setlocale(LC_ALL, "fr_FR.UTF-8") != nullptr;
    EXPECT_EQ(obs::JsonWriter::formatNumber(2.5), "2.5");
    EXPECT_EQ(obs::JsonWriter::formatFixed(2.5, 2), "2.50");
    std::ostringstream os;
    {
        obs::JsonWriter w(os);
        w.beginObject();
        w.field("v", 1234.5);
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"v\":1234.5}");
    std::setlocale(LC_ALL, saved.c_str());
    if (!have_locale)
        GTEST_LOG_(INFO) << "no comma-decimal locale installed; "
                            "checked the C locale only";
}

// ---------------------------------------------------------------------
// explain / diff golden outputs (checked-in report pair)
// ---------------------------------------------------------------------

std::string
readDataFile(const std::string &name)
{
    const std::string path =
        std::string(EMMCSIM_TEST_DATA_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.is_open()) << "missing " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

obs::JsonValue
loadReport(const std::string &name)
{
    obs::JsonValue v;
    std::string err;
    EXPECT_TRUE(obs::JsonValue::parse(readDataFile(name), v, err))
        << err;
    return v;
}

TEST(ExplainGoldenTest, ExplainMatchesGolden)
{
    const obs::JsonValue report = loadReport("attr_report_hps.json");
    std::ostringstream os;
    std::string err;
    ASSERT_TRUE(obs::explainReport(report, os, err)) << err;
    EXPECT_EQ(os.str(), readDataFile("attr_explain_hps.golden.txt"));
}

TEST(ExplainGoldenTest, DiffMatchesGolden)
{
    const obs::JsonValue a = loadReport("attr_report_hps.json");
    const obs::JsonValue b = loadReport("attr_report_4ps.json");
    std::ostringstream os;
    std::string err;
    ASSERT_TRUE(obs::diffReports(a, b, os, err)) << err;
    EXPECT_EQ(os.str(),
              readDataFile("attr_diff_hps_4ps.golden.txt"));
}

TEST(ExplainGoldenTest, RejectsNonReportDocuments)
{
    obs::JsonValue v;
    std::string parse_err;
    ASSERT_TRUE(
        obs::JsonValue::parse("{\"schema\":\"nope\"}", v, parse_err))
        << parse_err;
    std::ostringstream os;
    std::string err;
    EXPECT_FALSE(obs::explainReport(v, os, err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(obs::diffReports(v, v, os, err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace emmcsim
