/**
 * @file
 * Analysis-module tests: locality definitions, Table III / Table IV
 * computations, and figure bucket distributions on hand-built traces.
 */

#include <gtest/gtest.h>

#include "analysis/characteristics.hh"
#include "analysis/correlation.hh"
#include "analysis/distributions.hh"
#include "analysis/locality.hh"
#include "analysis/size_stats.hh"
#include "analysis/throughput.hh"
#include "analysis/timing_stats.hh"

using namespace emmcsim;
using namespace emmcsim::analysis;

namespace {

trace::TraceRecord
rec(sim::Time arrival_ms, std::uint64_t unit, std::uint64_t units,
    bool write)
{
    trace::TraceRecord r;
    r.arrival = sim::milliseconds(arrival_ms);
    r.lbaSector = emmcsim::units::unitToLba(
        emmcsim::units::UnitAddr{static_cast<std::int64_t>(unit)});
    r.sizeBytes = emmcsim::units::unitsToBytes(units);
    r.op = write ? trace::OpType::Write : trace::OpType::Read;
    return r;
}

} // namespace

TEST(Locality, EmptyTrace)
{
    trace::Trace t;
    LocalityResult res = computeLocality(t);
    EXPECT_DOUBLE_EQ(res.spatial, 0.0);
    EXPECT_DOUBLE_EQ(res.temporal, 0.0);
}

TEST(Locality, PureSequentialHasFullSpatial)
{
    trace::Trace t("seq");
    t.push(rec(0, 0, 2, false));
    t.push(rec(1, 2, 2, false));
    t.push(rec(2, 4, 2, false));
    LocalityResult res = computeLocality(t);
    // 2 of 3 requests continue their predecessor.
    EXPECT_NEAR(res.spatial, 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(res.temporal, 0.0);
}

TEST(Locality, ReaccessCountsTemporalHits)
{
    trace::Trace t("reuse");
    t.push(rec(0, 0, 1, true));
    t.push(rec(1, 100, 1, true));
    t.push(rec(2, 0, 1, true));   // hit
    t.push(rec(3, 100, 1, true)); // hit
    t.push(rec(4, 0, 1, true));   // hit
    LocalityResult res = computeLocality(t);
    EXPECT_EQ(res.addressHits, 3u);
    EXPECT_NEAR(res.temporal, 0.6, 1e-12);
}

TEST(Locality, SequentialRequiresExactAdjacency)
{
    trace::Trace t("gap");
    t.push(rec(0, 0, 1, false));
    t.push(rec(1, 2, 1, false)); // gap of one unit: not sequential
    LocalityResult res = computeLocality(t);
    EXPECT_EQ(res.sequentialRequests, 0u);
}

TEST(SizeStats, Table3Columns)
{
    trace::Trace t("x");
    t.push(rec(0, 0, 1, false));  // 4KB read
    t.push(rec(1, 8, 3, true));   // 12KB write
    t.push(rec(2, 16, 4, true));  // 16KB write
    SizeStats s = computeSizeStats(t);
    EXPECT_EQ(s.requests, 3u);
    EXPECT_DOUBLE_EQ(s.dataSizeKb, 32.0);
    EXPECT_DOUBLE_EQ(s.maxSizeKb, 16.0);
    EXPECT_NEAR(s.aveSizeKb, 32.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.aveReadKb, 4.0);
    EXPECT_DOUBLE_EQ(s.aveWriteKb, 14.0);
    EXPECT_NEAR(s.writeReqPct, 200.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.writeSizePct, 100.0 * 28.0 / 32.0);
}

TEST(SizeStats, EmptyTraceSafe)
{
    trace::Trace t("empty");
    SizeStats s = computeSizeStats(t);
    EXPECT_EQ(s.requests, 0u);
    EXPECT_DOUBLE_EQ(s.dataSizeKb, 0.0);
}

TEST(TimingStats, ArrivalAndAccessRates)
{
    trace::Trace t("rates");
    t.push(rec(0, 0, 1, false));
    t.push(rec(500, 8, 1, false));
    t.push(rec(1000, 16, 2, true)); // duration 1 s
    TimingStats s = computeTimingStats(t);
    EXPECT_NEAR(s.durationSec, 1.0, 1e-9);
    EXPECT_NEAR(s.arrivalRate, 3.0, 1e-9);
    EXPECT_NEAR(s.accessRateKbps, 16.0, 1e-9);
    EXPECT_FALSE(s.replayed);
    EXPECT_NEAR(s.meanInterArrivalMs, 500.0, 1e-9);
}

TEST(TimingStats, ReplayedColumns)
{
    trace::Trace t("replayed");
    for (int i = 0; i < 4; ++i) {
        trace::TraceRecord r = rec(i * 10, 0, 1, false);
        r.serviceStart = r.arrival + (i == 2 ? sim::milliseconds(1) : 0);
        r.finish = r.serviceStart + sim::milliseconds(2);
        t.push(r);
    }
    TimingStats s = computeTimingStats(t);
    EXPECT_TRUE(s.replayed);
    EXPECT_NEAR(s.noWaitPct, 75.0, 1e-9);
    EXPECT_NEAR(s.meanServiceMs, 2.0, 1e-9);
    EXPECT_NEAR(s.meanResponseMs, 2.25, 1e-9);
}

TEST(Distributions, SizeBucketsMatchFig4Ranges)
{
    trace::Trace t("sizes");
    t.push(rec(0, 0, 1, false));    // 4KB    -> bucket 0
    t.push(rec(1, 0, 2, false));    // 8KB    -> bucket 1
    t.push(rec(2, 0, 4, false));    // 16KB   -> bucket 2
    t.push(rec(3, 0, 16, false));   // 64KB   -> bucket 3
    t.push(rec(4, 0, 64, false));   // 256KB  -> bucket 4
    t.push(rec(5, 0, 256, true));   // 1MB    -> bucket 5
    t.push(rec(6, 0, 512, true));   // 2MB    -> overflow
    sim::Histogram h = sizeDistribution(t);
    ASSERT_EQ(h.bucketCount(), sizeBucketLabels().size());
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        EXPECT_EQ(h.bucketCountAt(i), 1u) << i;
}

TEST(Distributions, SmallRequestFraction)
{
    trace::Trace t("small");
    t.push(rec(0, 0, 1, false));
    t.push(rec(1, 0, 1, true));
    t.push(rec(2, 0, 4, true));
    EXPECT_NEAR(smallRequestFraction(t), 2.0 / 3.0, 1e-12);
}

TEST(Distributions, ResponseBucketsArePowersOfTwo)
{
    const auto &bounds = responseBucketBoundsMs();
    ASSERT_EQ(bounds.size(), 8u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
}

TEST(Distributions, ResponseDistributionCounts)
{
    trace::Trace t("resp");
    for (int i = 0; i < 3; ++i) {
        trace::TraceRecord r = rec(i, 0, 1, false);
        r.serviceStart = r.arrival;
        r.finish = r.arrival + sim::microseconds(1500 * (i + 1));
        t.push(r); // 1.5ms, 3ms, 4.5ms
    }
    sim::Histogram h = responseDistribution(t);
    EXPECT_EQ(h.bucketCountAt(1), 1u); // 1-2ms
    EXPECT_EQ(h.bucketCountAt(2), 1u); // 2-4ms
    EXPECT_EQ(h.bucketCountAt(3), 1u); // 4-8ms
}

TEST(Distributions, InterArrivalDistributionAndTail)
{
    trace::Trace t("gaps");
    t.push(rec(0, 0, 1, false));
    t.push(rec(1, 0, 1, false));    // 1ms gap
    t.push(rec(101, 0, 1, false));  // 100ms gap
    sim::Histogram h = interArrivalDistribution(t);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.bucketCountAt(0), 1u); // <=1ms
    EXPECT_EQ(h.bucketCountAt(4), 1u); // 64-256ms
    EXPECT_NEAR(interArrivalTailFraction(t, 16.0), 0.5, 1e-12);
}

TEST(Distributions, LabelsMatchBucketCounts)
{
    EXPECT_EQ(sizeBucketLabels().size(), sizeBucketBoundsKb().size() + 1);
    EXPECT_EQ(responseBucketLabels().size(),
              responseBucketBoundsMs().size() + 1);
    EXPECT_EQ(interArrivalBucketLabels().size(),
              interArrivalBucketBoundsMs().size() + 1);
}

TEST(Throughput, PerRequestMean)
{
    trace::Trace t("tp");
    trace::TraceRecord r = rec(0, 0, 256, false); // 1MB read
    r.serviceStart = r.arrival;
    r.finish = r.arrival + sim::milliseconds(10); // 100 MB/s
    t.push(r);
    EXPECT_NEAR(meanRequestThroughputMBps(t, false), 104.8576, 1e-3);
    EXPECT_DOUBLE_EQ(meanRequestThroughputMBps(t, true), 0.0);
}

TEST(Throughput, SustainedUsesBusyWindow)
{
    trace::Trace t("tp2");
    for (int i = 0; i < 2; ++i) {
        trace::TraceRecord r = rec(i * 10, 0, 256, true);
        r.serviceStart = r.arrival;
        r.finish = r.arrival + sim::milliseconds(10);
        t.push(r);
    }
    // 2MB in 20ms => ~104.9 MB/s.
    EXPECT_NEAR(sustainedThroughputMBps(t), 104.8576, 1e-3);
}

TEST(Characteristics, DetectsWriteDominance)
{
    trace::Trace wd("writey");
    for (int i = 0; i < 10; ++i)
        wd.push(rec(i * 1000, static_cast<std::uint64_t>(i) * 100, 1,
                    i != 0)); // 90% writes
    CharacteristicsReport rep = evaluateCharacteristics({wd});
    EXPECT_EQ(rep.traces, 1u);
    EXPECT_EQ(rep.writeDominant, 1u);
    EXPECT_EQ(rep.smallMajority, 1u);
    EXPECT_EQ(rep.longMeanGap, 1u);   // 1s gaps
    EXPECT_EQ(rep.heavyGapTail, 1u);  // all gaps > 16ms
    EXPECT_EQ(rep.weakSpatial, 1u);
}

TEST(Characteristics, DescribeMentionsAllSix)
{
    CharacteristicsReport rep;
    std::string text = describeCharacteristics(rep);
    for (const char *tag : {"C1", "C2", "C3", "C5", "C6"})
        EXPECT_NE(text.find(tag), std::string::npos) << tag;
}

TEST(Correlation, PearsonPerfectAndInverse)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> z = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1, 2}, {1}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({3, 3, 3}, {1, 2, 3}), 0.0);
}

TEST(Correlation, SizeResponseTracksServiceModel)
{
    // Synthetic replay where response = k * size: perfect correlation.
    trace::Trace t("corr");
    for (int i = 1; i <= 20; ++i) {
        trace::TraceRecord r = rec(i, 0, static_cast<std::uint64_t>(i),
                                   false);
        r.serviceStart = r.arrival;
        r.finish = r.arrival + sim::microseconds(100) * i;
        t.push(r);
    }
    EXPECT_NEAR(sizeResponseCorrelation(t), 1.0, 1e-9);
    EXPECT_NEAR(sizeServiceCorrelation(t), 1.0, 1e-9);
}
