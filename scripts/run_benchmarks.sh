#!/usr/bin/env bash
# Run the simulator-core micro-benchmark suite and write the result as
# BENCH_simcore.json, the perf baseline subsequent PRs compare against.
#
# Four binaries feed the file:
#   bench_micro_sim   event-core throughput, trace generation, replay
#   bench_recovery    power-up recovery vs dirty-state size, snapshot
#                     save/load throughput and image size
#   bench_ingest      trace ingestion: text parse vs emmctrace-bin
#                     decode records/s, binary encode, CSV import
#   bench_biotracer_overhead (via --bench-json): wall-clock overhead
#                     of the latency-attribution recorder, plus the
#                     bit-identical-MRT cross-check
# Their JSON outputs are merged (benchmark lists concatenated under
# the first binary's context block).
#
# The JSON carries, per benchmark:
#   - items_per_second   events/sec through the event core
#   - arena_high_water   peak live events (peak-RSS proxy: the arena's
#                        memory footprint tracks this, not lifetime
#                        events)
#   - sim_recovery_ms / scanned_pages / image_bytes for the recovery
#     and snapshot benches
#
# After merging, the event-core benchmarks (BM_EventQueueScheduleRun
# and its Clustered variant) are gated against the committed baseline
# bench/BENCH_simcore.json: a drop of more than 25% in
# items_per_second fails the run. The wide tolerance absorbs
# machine-to-machine noise while still catching a real event-core
# regression (the two-tier queue's reason to exist).
#
# Usage: scripts/run_benchmarks.sh [output.json]
#   BUILD_DIR=<dir>           build tree to use (default: build)
#   EMMCSIM_BENCH_ARGS=...    extra google-benchmark flags (e.g.
#                             --benchmark_repetitions=5)
#   EMMCSIM_BENCH_BASELINE=<file>  baseline to gate against
#                             (default: bench/BENCH_simcore.json)
#   EMMCSIM_BENCH_NO_GATE=1   skip the regression gate (e.g. when
#                             regenerating the baseline itself)

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_simcore.json}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BASELINE="${EMMCSIM_BENCH_BASELINE:-$SCRIPT_DIR/../bench/BENCH_simcore.json}"
BENCHES=("$BUILD_DIR/bench/bench_micro_sim"
         "$BUILD_DIR/bench/bench_recovery"
         "$BUILD_DIR/bench/bench_ingest")

PARTS=()
for BENCH in "${BENCHES[@]}"; do
    if [ ! -x "$BENCH" ]; then
        echo "error: $BENCH not built (cmake --build $BUILD_DIR --target $(basename "$BENCH"))" >&2
        exit 1
    fi
    PART="$OUT.$(basename "$BENCH").part"
    # shellcheck disable=SC2086  # intentional word splitting of extra args
    "$BENCH" \
        --benchmark_out="$PART" \
        --benchmark_out_format=json \
        ${EMMCSIM_BENCH_ARGS:-}
    PARTS+=("$PART")
done

# bench_biotracer_overhead is not a google-benchmark binary; its
# --bench-json flag emits a compatible part with the attribution
# overhead numbers (and fails the run if attribution perturbs the
# simulated MRT).
BIO="$BUILD_DIR/bench/bench_biotracer_overhead"
if [ ! -x "$BIO" ]; then
    echo "error: $BIO not built (cmake --build $BUILD_DIR --target bench_biotracer_overhead)" >&2
    exit 1
fi
PART="$OUT.bench_biotracer_overhead.part"
"$BIO" 0.2 --bench-json="$PART" > /dev/null
PARTS+=("$PART")

python3 - "$OUT" "${PARTS[@]}" <<'EOF'
import json
import sys

out, first, *rest = sys.argv[1:]
doc = json.load(open(first))
for part in rest:
    doc["benchmarks"].extend(json.load(open(part))["benchmarks"])
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
rm -f "${PARTS[@]}"

echo "wrote $OUT"

if [ "${EMMCSIM_BENCH_NO_GATE:-0}" = "1" ]; then
    echo "regression gate skipped (EMMCSIM_BENCH_NO_GATE=1)"
elif [ ! -f "$BASELINE" ]; then
    echo "regression gate skipped (no baseline at $BASELINE)"
else
    python3 - "$OUT" "$BASELINE" <<'EOF'
import json
import sys

# Gate the event-core benchmarks on items_per_second: >25% below the
# committed baseline fails. Only the schedule/run benches are gated —
# they are pure CPU loops; the replay/recovery benches touch the
# filesystem and are too noisy for a hard gate.
GATED_PREFIXES = ("BM_EventQueueScheduleRun",)
TOLERANCE = 0.75

out_path, base_path = sys.argv[1:]

def rates(path):
    doc = json.load(open(path))
    return {
        b["name"]: b["items_per_second"]
        for b in doc["benchmarks"]
        if b["name"].startswith(GATED_PREFIXES)
        and "items_per_second" in b
    }

current = rates(out_path)
baseline = rates(base_path)
failures = []
for name, base_rate in sorted(baseline.items()):
    cur = current.get(name)
    if cur is None:
        failures.append(f"{name}: benchmark disappeared from {out_path}")
        continue
    ratio = cur / base_rate
    marker = "FAIL" if ratio < TOLERANCE else "ok"
    print(f"  gate {name}: {cur / 1e6:.1f}M/s vs baseline "
          f"{base_rate / 1e6:.1f}M/s ({ratio:.2f}x) {marker}")
    if ratio < TOLERANCE:
        failures.append(
            f"{name}: {cur / 1e6:.1f}M items/s is "
            f"{ratio:.2f}x the baseline {base_rate / 1e6:.1f}M "
            f"(threshold {TOLERANCE}x)")
if failures:
    print("event-core benchmark regression:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("regression gate passed "
      f"({len(baseline)} benchmarks within {TOLERANCE}x)")
EOF
fi
