#!/usr/bin/env bash
# Run the simulator-core micro-benchmark suite and write the result as
# BENCH_simcore.json, the perf baseline subsequent PRs compare against.
#
# The JSON (google-benchmark format) carries, per benchmark:
#   - items_per_second   events/sec through the event core
#   - arena_high_water   peak live events (peak-RSS proxy: the arena's
#                        memory footprint tracks this, not lifetime
#                        events)
#   - arena_slots / heap_compactions where the benchmark reports them
#
# Usage: scripts/run_benchmarks.sh [output.json]
#   BUILD_DIR=<dir>           build tree to use (default: build)
#   EMMCSIM_BENCH_ARGS=...    extra google-benchmark flags (e.g.
#                             --benchmark_repetitions=5)

set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_simcore.json}"
BENCH="$BUILD_DIR/bench/bench_micro_sim"

if [ ! -x "$BENCH" ]; then
    echo "error: $BENCH not built (cmake --build $BUILD_DIR --target bench_micro_sim)" >&2
    exit 1
fi

# shellcheck disable=SC2086  # intentional word splitting of extra args
"$BENCH" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    ${EMMCSIM_BENCH_ARGS:-}

echo "wrote $OUT"
