#!/usr/bin/env python3
"""Convert an emmctrace v1 text file into a Chrome trace_event JSON
file loadable by Perfetto (https://ui.perfetto.dev) or chrome://tracing.

Usage:
    trace2perfetto.py INPUT.trace OUTPUT.json
        Convert a replayed emmctrace (with serviceStart/finish
        timestamps) into trace_event JSON. Each request becomes one
        complete ("X") slice on the request track; queue waits
        (arrival < serviceStart) become async "b"/"e" pairs, matching
        the simulator's own --trace-out export.

    trace2perfetto.py --check FILE.json
        Validate that FILE.json is a structurally sound Chrome trace:
        parses as JSON, has a traceEvents list, every event carries
        the required keys for its phase, and "b"/"e" pairs balance.
        For simulator exports with attribution sub-spans (cat
        "phase"), additionally checks that each request's phase
        slices stay inside its service span and never sum past its
        duration. Exits non-zero with a diagnostic on the first
        violation.

Only the Python standard library is used.
"""

import json
import sys

US_PER_NS = 1e-3
PID = 1
REQUEST_TID = 1


def parse_emmctrace(path):
    """Parse an emmctrace v1 file into (name, records)."""
    name = ""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.startswith("# emmctrace v1"):
            raise ValueError(f"{path}: not an emmctrace v1 file")
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# name:"):
                    name = line[len("# name:"):].strip()
                continue
            parts = line.split()
            if len(parts) not in (4, 6):
                raise ValueError(
                    f"{path}:{lineno}: expected 4 or 6 fields, "
                    f"got {len(parts)}")
            rec = {
                "arrival": int(parts[0]),
                "lba_sector": int(parts[1]),
                "size_bytes": int(parts[2]),
                "op": parts[3],
            }
            if rec["op"] not in ("R", "W"):
                raise ValueError(
                    f"{path}:{lineno}: bad op {parts[3]!r}")
            if len(parts) == 6:
                rec["service_start"] = int(parts[4])
                rec["finish"] = int(parts[5])
            records.append(rec)
    return name, records


def convert(name, records):
    """Build the Chrome trace_event document for parsed records."""
    events = [
        {"ph": "M", "pid": PID, "tid": REQUEST_TID,
         "name": "process_name",
         "args": {"name": name or "emmctrace"}},
        {"ph": "M", "pid": PID, "tid": REQUEST_TID,
         "name": "thread_name", "args": {"name": "emmc requests"}},
    ]
    replayed = 0
    for i, rec in enumerate(records):
        if "finish" not in rec:
            continue
        replayed += 1
        arrival_us = rec["arrival"] * US_PER_NS
        start_us = rec["service_start"] * US_PER_NS
        finish_us = rec["finish"] * US_PER_NS
        if rec["service_start"] > rec["arrival"]:
            common = {"cat": "queue", "name": "queued", "pid": PID,
                      "tid": REQUEST_TID, "id": i}
            events.append(dict(common, ph="b", ts=arrival_us))
            events.append(dict(common, ph="e", ts=start_us))
        events.append({
            "ph": "X", "cat": "request",
            "name": "write" if rec["op"] == "W" else "read",
            "pid": PID, "tid": REQUEST_TID,
            "ts": start_us, "dur": finish_us - start_us,
            "args": {"id": i, "lba_sector": rec["lba_sector"],
                     "size_bytes": rec["size_bytes"]},
        })
    if replayed == 0:
        print("warning: no replayed records (no timestamps); "
              "emitting metadata only", file=sys.stderr)
    return {"displayTimeUnit": "ns", "traceEvents": events}


REQUIRED_KEYS = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "b": ("name", "ts", "id", "pid", "tid"),
    "e": ("name", "ts", "id", "pid", "tid"),
    "M": ("name", "pid"),
}


def check(path):
    """Validate a Chrome trace JSON file; raise ValueError on issues."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: missing traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    open_async = {}
    counts = {}
    request_spans = {}  # args.id -> (ts, dur) of the request X slice
    phase_spans = {}    # args.id -> [(ts, dur), ...] of its phases
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if ph not in REQUIRED_KEYS:
            raise ValueError(f"{path}: event {i}: unknown phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        for k in REQUIRED_KEYS[ph]:
            if k not in ev:
                raise ValueError(
                    f"{path}: event {i} (ph={ph}): missing key {k!r}")
        if ph == "X" and ev["dur"] < 0:
            raise ValueError(f"{path}: event {i}: negative duration")
        if ph == "X" and "args" in ev and "id" in ev.get("args", {}):
            rid = ev["args"]["id"]
            if ev.get("cat") == "request":
                request_spans[rid] = (ev["ts"], ev["dur"])
            elif ev.get("cat") == "phase":
                phase_spans.setdefault(rid, []).append(
                    (ev["ts"], ev["dur"]))
        if ph in ("b", "e"):
            key = (ev.get("cat"), ev["name"], ev["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ValueError(
                        f"{path}: event {i}: 'e' without matching "
                        f"'b' for {key}")
                open_async[key] -= 1
    dangling = {k: n for k, n in open_async.items() if n > 0}
    if dangling:
        raise ValueError(
            f"{path}: {len(dangling)} unclosed async span(s), "
            f"e.g. {next(iter(dangling))}")
    # Attribution tiling: phase slices live inside their request's
    # service span and sum to at most its duration (exactly equal when
    # no slice was dropped; zero-length phases are never emitted).
    # Timestamps are ns-precise microseconds, so allow 1 ns of slack.
    eps = 1e-3
    for rid, phases in phase_spans.items():
        if rid not in request_spans:
            raise ValueError(
                f"{path}: phase slices for unknown request id {rid}")
        ts, dur = request_spans[rid]
        total = sum(d for _, d in phases)
        if total > dur + eps:
            raise ValueError(
                f"{path}: request id {rid}: phase slices sum to "
                f"{total} us > span {dur} us")
        for pts, pdur in phases:
            if pts < ts - eps or pts + pdur > ts + dur + eps:
                raise ValueError(
                    f"{path}: request id {rid}: phase slice "
                    f"[{pts}, {pts + pdur}] outside span "
                    f"[{ts}, {ts + dur}]")
    summary = ", ".join(f"{n} {ph}" for ph, n in sorted(counts.items()))
    print(f"{path}: OK ({len(events)} events: {summary})")


def main(argv):
    if len(argv) == 3 and argv[1] == "--check":
        try:
            check(argv[2])
        except (ValueError, OSError, json.JSONDecodeError) as e:
            print(f"check failed: {e}", file=sys.stderr)
            return 1
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        name, records = parse_emmctrace(argv[1])
        doc = convert(name, records)
    except (ValueError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    with open(argv[2], "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    n = sum(1 for ev in doc["traceEvents"] if ev["ph"] == "X")
    print(f"wrote {argv[2]}: {n} request slices from {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
