#!/usr/bin/env bash
# Run the project linters over the emmcsim sources:
#   1. emmclint (scripts/emmclint.py) — project rules: unit-typed
#      parameters, deterministic iteration, event-path allocation,
#      wall-clock/randomness bans, header self-containment.  Needs
#      only python3 + g++, so it always runs.
#   2. clang-tidy with the repo's .clang-tidy profile and the compile
#      database exported by CMake.
#
# Usage: scripts/lint.sh [build-dir]
#
# Exits 0 with a SKIPPED note for the clang-tidy half when clang-tidy
# is not installed, so the script is safe to call from environments
# without LLVM tooling; CI installs clang-tidy explicitly and
# therefore gets the real run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

echo "lint.sh: emmclint self-test"
python3 "$repo_root/scripts/emmclint.py" --self-test
echo "lint.sh: emmclint over src/"
python3 "$repo_root/scripts/emmclint.py"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
    for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" >/dev/null 2>&1; then
            tidy_bin="$cand"
            break
        fi
    done
fi
if [[ -z "$tidy_bin" ]]; then
    echo "lint.sh: SKIPPED (clang-tidy not installed)"
    exit 0
fi

# The compile database comes from CMAKE_EXPORT_COMPILE_COMMANDS (on by
# default in the top-level CMakeLists). Configure if it is missing.
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint.sh: configuring $build_dir for compile_commands.json"
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint.sh: ERROR: no compile_commands.json in $build_dir" >&2
    exit 1
fi

mapfile -t sources < <(
    find "$repo_root/src" "$repo_root/examples" "$repo_root/bench" \
         -name '*.cc' -o -name '*.cpp' | sort
)
echo "lint.sh: $tidy_bin over ${#sources[@]} files"

# Prefer run-clang-tidy (parallel) when it ships with the install.
runner="${tidy_bin/clang-tidy/run-clang-tidy}"
if command -v "$runner" >/dev/null 2>&1; then
    "$runner" -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
        "${sources[@]}"
else
    "$tidy_bin" -p "$build_dir" --quiet "${sources[@]}"
fi
echo "lint.sh: OK"
