#!/usr/bin/env python3
"""emmclint: project-rule linter for the emmcsim tree.

Enforces the handful of project rules that neither the compiler nor
clang-tidy check for us:

  event-path-alloc     No heap allocation (new / make_unique /
                       make_shared / malloc) and no std::function in
                       the simulator event path (src/sim).  The event
                       core promises flat per-event cost; a stray
                       allocation there is a performance bug.
  event-path-container No node-based or adapter containers (std::map
                       / multimap / set / multiset / list /
                       forward_list / deque / priority_queue /
                       unordered_*) in src/sim.  The two-tier event
                       queue is flat vectors (arena, calendar wheel,
                       4-ary heap) precisely to avoid per-node
                       allocation and pointer chasing; a node-based
                       container smuggles both back in.
  unordered-iter       No iteration over std::unordered_map/set.
                       Hash-table iteration order is unspecified, and
                       anything it feeds (reports, traces, flash ops)
                       silently loses run-to-run determinism.
  raw-unit-param       No raw integer parameters named lba / lpn /
                       ppn / unit / page / block / sector outside
                       core/units.hh.  Those domains have strong
                       types (units::Lba, flash::Lpn, ...); a raw
                       integer parameter reopens the door to the
                       sector/unit mix-ups the types exist to stop.
  wall-clock           No wall-clock or ambient randomness in src/
                       (time(), chrono clocks, rand(), random_device).
                       Simulated time comes from sim::Simulator and
                       randomness from seeded sim::Rng; anything else
                       breaks replay determinism.
  durable-ftl-mutation No direct mutation of the durable mapping state
                       (map_.set / map_.clear / map_.reset*) in
                       src/ftl outside journal.cc.  Crash consistency
                       hinges on every L2P change flowing through the
                       MetaJournal gateway (recordWrite / recordTrim /
                       installRecovered, ...); a direct map_ write is
                       an update recovery can never replay.
  header-self-contained
                       Every header under src/ must compile on its
                       own (g++ -fsyntax-only).  Include-order
                       coupling between headers is how refactors rot.

Suppress a finding by putting `// emmclint: allow(<rule>)` on the
offending line or the line directly above it.

Usage:
  scripts/emmclint.py                 lint the whole tree
  scripts/emmclint.py src/ftl/gc.cc   lint specific files
  scripts/emmclint.py --self-test     run against tests/lint corpus
  scripts/emmclint.py --list-rules    print the rule table

Exit status: 0 clean, 1 findings, 2 usage/internal error.

The linter is pure regex over comment/string-stripped source, so it
needs nothing beyond python3 and (for the header rule) g++.  When
python3-libclang is installed an AST engine can be selected with
--engine=clang for stricter parameter matching; the regex engine is
the default and the one CI runs.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
from dataclasses import dataclass

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ---------------------------------------------------------------------------
# Source model


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving
    newlines and column positions so findings keep real locations."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """True when `// emmclint: allow(rule)` covers 1-based lineno."""
    pat = re.compile(r"emmclint:\s*allow\(\s*" + re.escape(rule) + r"\s*\)")
    for cand in (lineno, lineno - 1):
        if 1 <= cand <= len(raw_lines) and pat.search(raw_lines[cand - 1]):
            return True
    return False


# ---------------------------------------------------------------------------
# Rules (regex engine)

EVENT_PATH_DIRS = (os.path.join("src", "sim"),)

# Placement new (`new (buf) T`) reuses storage the caller already
# owns — that is the InlineAction idiom and explicitly allowed; only
# allocating `new` is banned, hence the (?!\s*\() guard.
ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\bstd::function\b"), "std::function"),
]

# The event core is flat vectors by design (arena + calendar wheel +
# 4-ary heap over contiguous storage, DESIGN.md §11/§16). Node-based
# and adapter containers reintroduce the per-event allocation and
# pointer-chasing the two-tier queue exists to avoid; std::deque is
# included because its chunk map defeats the prefetcher the dispatch
# batch relies on.
NODE_CONTAINER = re.compile(
    r"\bstd::(map|multimap|set|multiset|list|forward_list|deque|"
    r"priority_queue|unordered_map|unordered_multimap|unordered_set|"
    r"unordered_multiset)\b")

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)"
                r"_clock\b"), "std::chrono clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
]

UNIT_NAMES = r"(?:lba|lpn|ppn|unit|page|block|sector)"
RAW_UNIT_PARAM = re.compile(
    r"(?<=[(,])\s*(?:const\s+)?(?:std::)?u?int(?:8|16|32|64)_t\s+"
    r"(" + UNIT_NAMES + r")(?=\s*[,)=])"
)

# The MetaJournal gateway (src/ftl/journal.cc) is the single place
# allowed to touch the mapping table directly; everything else in
# src/ftl must journal its mutations so recovery can replay them.
DURABLE_FTL_DIR = os.path.join("src", "ftl")
DURABLE_GATEWAY_FILES = ("journal.cc",)
DURABLE_MUTATION = re.compile(
    r"\bmap_\s*\.\s*(set|clear|reset\w*)\s*\(")

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*"
    r"(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([\w.\->]+)\s*\)")


def in_event_path(path: str) -> bool:
    rel = os.path.relpath(path, REPO_ROOT)
    return any(rel.startswith(d + os.sep) for d in EVENT_PATH_DIRS)


def lint_text(path: str, raw: str, scope_event_path: bool,
              scope_units_hh: bool,
              scope_ftl_durable: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()

    def add(rule: str, lineno: int, message: str) -> None:
        if not suppressed(raw_lines, lineno, rule):
            findings.append(Finding(rule, path, lineno, message))

    # event-path-alloc -----------------------------------------------------
    if scope_event_path:
        for lineno, line in enumerate(code_lines, 1):
            if line.lstrip().startswith("#"):
                continue
            for pat, what in ALLOC_PATTERNS:
                if pat.search(line):
                    add("event-path-alloc", lineno,
                        f"{what} in the simulator event path")
                    break

    # event-path-container -------------------------------------------------
    if scope_event_path:
        for lineno, line in enumerate(code_lines, 1):
            if line.lstrip().startswith("#"):
                continue
            m = NODE_CONTAINER.search(line)
            if m:
                add("event-path-container", lineno,
                    f"std::{m.group(1)} in the simulator event path: "
                    f"the event core is flat storage (arena, calendar "
                    f"wheel, 4-ary heap); use a vector-backed "
                    f"structure instead")

    # wall-clock -----------------------------------------------------------
    for lineno, line in enumerate(code_lines, 1):
        for pat, what in WALL_CLOCK_PATTERNS:
            if pat.search(line):
                add("wall-clock", lineno,
                    f"{what}: use sim::Simulator time / seeded sim::Rng")
                break

    # durable-ftl-mutation -------------------------------------------------
    if scope_ftl_durable:
        for lineno, line in enumerate(code_lines, 1):
            m = DURABLE_MUTATION.search(line)
            if m:
                add("durable-ftl-mutation", lineno,
                    f"direct map_.{m.group(1)}() bypasses the "
                    f"MetaJournal gateway; record the mutation through "
                    f"ftl/journal.hh so recovery can replay it")

    # raw-unit-param -------------------------------------------------------
    if not scope_units_hh:
        # Join continuation lines so parameter lists split across lines
        # still match, then map hits back to their source line.
        joined = code
        for m in RAW_UNIT_PARAM.finditer(joined):
            # A `(` opened by a control keyword is a statement, not a
            # parameter list: `for (std::uint64_t lpn = 0; ...)`.
            opener = m.start() - 1
            if opener >= 0 and joined[opener] == "(":
                before = joined[max(0, opener - 16):opener]
                if re.search(r"\b(?:for|if|while|switch)\s*$", before):
                    continue
            lineno = joined.count("\n", 0, m.start(1)) + 1
            add("raw-unit-param", lineno,
                f"raw integer parameter '{m.group(1)}': use the typed "
                f"quantity from core/units.hh")

    # unordered-iter -------------------------------------------------------
    unordered_names = {m.group(1) for m in UNORDERED_DECL.finditer(code)}
    if unordered_names:
        for lineno, line in enumerate(code_lines, 1):
            m = RANGE_FOR.search(line)
            if not m:
                continue
            expr = m.group(1)
            base = re.split(r"[.\-]", expr)[-1].lstrip(">")
            if base in unordered_names or expr in unordered_names:
                add("unordered-iter", lineno,
                    f"iteration over unordered container '{expr}' has "
                    f"unspecified order; iterate an ordered mirror")
    return findings


def lint_file(path: str) -> list[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [Finding("io-error", path, 0, str(e))]
    rel = os.path.relpath(path, REPO_ROOT)
    in_ftl = rel.startswith(DURABLE_FTL_DIR + os.sep)
    gateway = os.path.basename(path) in DURABLE_GATEWAY_FILES
    return lint_text(
        path, raw,
        scope_event_path=in_event_path(path),
        scope_units_hh=os.path.basename(path) == "units.hh",
        scope_ftl_durable=in_ftl and not gateway,
    )


# ---------------------------------------------------------------------------
# header-self-contained rule (compile probe)


def find_sources(root: str, dirs: tuple[str, ...],
                 exts: tuple[str, ...]) -> list[str]:
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def check_header(header: str) -> Finding | None:
    cmd = [
        "g++", "-std=c++20", "-fsyntax-only",
        "-I", os.path.join(REPO_ROOT, "src"),
        "-x", "c++", header,
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (OSError, subprocess.TimeoutExpired) as e:
        return Finding("header-self-contained", header, 1,
                       f"probe failed to run: {e}")
    if proc.returncode != 0:
        first = (proc.stderr.strip().splitlines() or ["(no output)"])[0]
        return Finding("header-self-contained", header, 1,
                       f"does not compile standalone: {first}")
    return None


def lint_headers(headers: list[str], jobs: int) -> list[Finding]:
    findings: list[Finding] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
        for result in ex.map(check_header, headers):
            if result is not None:
                findings.append(result)
    return findings


# ---------------------------------------------------------------------------
# Optional libclang engine (stricter raw-unit-param matching)


def lint_file_clang(path: str) -> list[Finding] | None:
    """AST-based raw-unit-param check. Returns None when libclang is
    unavailable so the caller falls back to the regex engine."""
    try:
        import clang.cindex as ci  # type: ignore
    except ImportError:
        return None
    findings: list[Finding] = []
    try:
        tu = ci.Index.create().parse(
            path, args=["-std=c++17", "-I", os.path.join(REPO_ROOT, "src")])
    except ci.TranslationUnitLoadError:
        return findings
    names = re.compile("^" + UNIT_NAMES + "$")
    ints = {"unsigned int", "int", "unsigned long", "long",
            "uint32_t", "uint64_t", "int32_t", "int64_t",
            "std::uint32_t", "std::uint64_t", "std::int32_t",
            "std::int64_t", "unsigned long long", "long long"}
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind != ci.CursorKind.PARM_DECL:
            continue
        if cursor.location.file is None or \
                cursor.location.file.name != path:
            continue
        spelled = cursor.type.get_canonical().spelling
        if names.match(cursor.spelling or "") and spelled in ints:
            findings.append(Finding(
                "raw-unit-param", path, cursor.location.line,
                f"raw integer parameter '{cursor.spelling}': use the "
                f"typed quantity from core/units.hh"))
    return findings


# ---------------------------------------------------------------------------
# Self-test corpus

EXPECT = re.compile(r"emmclint-expect:\s*([\w-]+)")


def self_test(corpus_dir: str) -> int:
    """Every `// emmclint-expect: <rule>` line in the corpus must
    produce exactly that finding; no unexpected findings allowed."""
    files = find_sources(corpus_dir, ("",), (".cc", ".hh", ".cpp"))
    if not files:
        print(f"emmclint --self-test: no corpus under {corpus_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    total_expected = 0
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        expected = set()
        for lineno, line in enumerate(raw_lines, 1):
            m = EXPECT.search(line)
            if m:
                expected.add((m.group(1), lineno))
        total_expected += len(expected)
        # Corpus files opt into path-scoped rules by filename prefix.
        scoped = os.path.basename(path).startswith("simpath_")
        ftl_scoped = os.path.basename(path).startswith("ftl_")
        got = {(f.rule, f.line)
               for f in lint_text(path, raw, scope_event_path=scoped,
                                  scope_units_hh=False,
                                  scope_ftl_durable=ftl_scoped)}
        # Corpus headers also go through the real compile probe, so
        # the header-self-contained rule is exercised end to end.
        if path.endswith(".hh"):
            probe = check_header(path)
            if probe is not None:
                got.add((probe.rule, probe.line))
        for rule, lineno in sorted(expected - got):
            print(f"SELF-TEST MISS {path}:{lineno}: expected [{rule}] "
                  f"to fire", file=sys.stderr)
            failures += 1
        for rule, lineno in sorted(got - expected):
            print(f"SELF-TEST FALSE-POSITIVE {path}:{lineno}: "
                  f"unexpected [{rule}]", file=sys.stderr)
            failures += 1
    if failures:
        print(f"emmclint --self-test: FAILED ({failures} mismatches)",
              file=sys.stderr)
        return 1
    print(f"emmclint --self-test: OK ({len(files)} corpus files, "
          f"{total_expected} expected findings all fired)")
    return 0


# ---------------------------------------------------------------------------


RULES_HELP = [
    ("event-path-alloc", "no heap alloc / std::function in src/sim"),
    ("event-path-container",
     "no node-based/adapter containers (map/set/list/deque/"
     "priority_queue/unordered_*) in src/sim"),
    ("unordered-iter", "no iteration over unordered containers"),
    ("raw-unit-param", "no raw int params named lba/lpn/ppn/unit/..."),
    ("wall-clock", "no wall-clock time or ambient randomness in src/"),
    ("durable-ftl-mutation",
     "L2P mutations in src/ftl go through the MetaJournal gateway"),
    ("header-self-contained", "every src/ header compiles standalone"),
]


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="emmclint", add_help=True)
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: src/ tree)")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the linter against tests/lint")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--no-headers", action="store_true",
                    help="skip the header-self-contained compile probe")
    ap.add_argument("--engine", choices=["regex", "clang"],
                    default="regex")
    ap.add_argument("--jobs", type=int,
                    default=max(2, (os.cpu_count() or 2) - 1))
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES_HELP:
            print(f"{rule:24} {desc}")
        return 0

    if args.self_test:
        return self_test(os.path.join(REPO_ROOT, "tests", "lint",
                                      "corpus"))

    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
        headers = [f for f in files if f.endswith(".hh")]
    else:
        files = find_sources(REPO_ROOT, ("src",), (".cc", ".hh"))
        headers = [f for f in files if f.endswith(".hh")]

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
        if args.engine == "clang":
            extra = lint_file_clang(path)
            if extra is None:
                print("emmclint: libclang unavailable, regex engine "
                      "already covered this file", file=sys.stderr)
            # AST findings duplicate regex ones; keep the union.
            elif extra:
                seen = {(f.rule, f.path, f.line) for f in findings}
                findings.extend(f for f in extra
                                if (f.rule, f.path, f.line) not in seen)

    if not args.no_headers and headers:
        findings.extend(lint_headers(headers, args.jobs))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.format())
    if findings:
        print(f"emmclint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"emmclint: OK ({len(files)} files"
          + ("" if args.no_headers else
             f", {len(headers)} header probes") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
