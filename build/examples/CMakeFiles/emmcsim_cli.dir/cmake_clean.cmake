file(REMOVE_RECURSE
  "CMakeFiles/emmcsim_cli.dir/emmcsim_cli.cpp.o"
  "CMakeFiles/emmcsim_cli.dir/emmcsim_cli.cpp.o.d"
  "emmcsim_cli"
  "emmcsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
