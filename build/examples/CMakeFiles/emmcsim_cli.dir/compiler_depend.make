# Empty compiler generated dependencies file for emmcsim_cli.
# This may be replaced when dependencies are built.
