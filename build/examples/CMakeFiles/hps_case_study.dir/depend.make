# Empty dependencies file for hps_case_study.
# This may be replaced when dependencies are built.
