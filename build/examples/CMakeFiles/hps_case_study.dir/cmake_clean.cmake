file(REMOVE_RECURSE
  "CMakeFiles/hps_case_study.dir/hps_case_study.cpp.o"
  "CMakeFiles/hps_case_study.dir/hps_case_study.cpp.o.d"
  "hps_case_study"
  "hps_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hps_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
