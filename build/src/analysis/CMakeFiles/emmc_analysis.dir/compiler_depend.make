# Empty compiler generated dependencies file for emmc_analysis.
# This may be replaced when dependencies are built.
