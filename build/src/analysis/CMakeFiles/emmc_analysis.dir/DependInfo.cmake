
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/characteristics.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/characteristics.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/characteristics.cc.o.d"
  "/root/repo/src/analysis/correlation.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/correlation.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/correlation.cc.o.d"
  "/root/repo/src/analysis/distributions.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/distributions.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/distributions.cc.o.d"
  "/root/repo/src/analysis/locality.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/locality.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/locality.cc.o.d"
  "/root/repo/src/analysis/size_stats.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/size_stats.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/size_stats.cc.o.d"
  "/root/repo/src/analysis/throughput.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/throughput.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/throughput.cc.o.d"
  "/root/repo/src/analysis/timing_stats.cc" "src/analysis/CMakeFiles/emmc_analysis.dir/timing_stats.cc.o" "gcc" "src/analysis/CMakeFiles/emmc_analysis.dir/timing_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/emmc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
