file(REMOVE_RECURSE
  "CMakeFiles/emmc_analysis.dir/characteristics.cc.o"
  "CMakeFiles/emmc_analysis.dir/characteristics.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/correlation.cc.o"
  "CMakeFiles/emmc_analysis.dir/correlation.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/distributions.cc.o"
  "CMakeFiles/emmc_analysis.dir/distributions.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/locality.cc.o"
  "CMakeFiles/emmc_analysis.dir/locality.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/size_stats.cc.o"
  "CMakeFiles/emmc_analysis.dir/size_stats.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/throughput.cc.o"
  "CMakeFiles/emmc_analysis.dir/throughput.cc.o.d"
  "CMakeFiles/emmc_analysis.dir/timing_stats.cc.o"
  "CMakeFiles/emmc_analysis.dir/timing_stats.cc.o.d"
  "libemmc_analysis.a"
  "libemmc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
