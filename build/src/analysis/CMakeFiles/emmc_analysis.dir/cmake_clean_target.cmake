file(REMOVE_RECURSE
  "libemmc_analysis.a"
)
