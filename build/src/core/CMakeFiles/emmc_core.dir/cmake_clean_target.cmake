file(REMOVE_RECURSE
  "libemmc_core.a"
)
