# Empty compiler generated dependencies file for emmc_core.
# This may be replaced when dependencies are built.
