file(REMOVE_RECURSE
  "CMakeFiles/emmc_core.dir/experiment.cc.o"
  "CMakeFiles/emmc_core.dir/experiment.cc.o.d"
  "CMakeFiles/emmc_core.dir/hps.cc.o"
  "CMakeFiles/emmc_core.dir/hps.cc.o.d"
  "CMakeFiles/emmc_core.dir/report.cc.o"
  "CMakeFiles/emmc_core.dir/report.cc.o.d"
  "CMakeFiles/emmc_core.dir/scheme.cc.o"
  "CMakeFiles/emmc_core.dir/scheme.cc.o.d"
  "libemmc_core.a"
  "libemmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
