file(REMOVE_RECURSE
  "CMakeFiles/emmc_host.dir/biotracer.cc.o"
  "CMakeFiles/emmc_host.dir/biotracer.cc.o.d"
  "CMakeFiles/emmc_host.dir/replayer.cc.o"
  "CMakeFiles/emmc_host.dir/replayer.cc.o.d"
  "libemmc_host.a"
  "libemmc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
