# Empty dependencies file for emmc_host.
# This may be replaced when dependencies are built.
