file(REMOVE_RECURSE
  "libemmc_host.a"
)
