file(REMOVE_RECURSE
  "CMakeFiles/emmc_trace.dir/trace.cc.o"
  "CMakeFiles/emmc_trace.dir/trace.cc.o.d"
  "libemmc_trace.a"
  "libemmc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
