# Empty compiler generated dependencies file for emmc_trace.
# This may be replaced when dependencies are built.
