file(REMOVE_RECURSE
  "libemmc_trace.a"
)
