file(REMOVE_RECURSE
  "libemmc_ftl.a"
)
