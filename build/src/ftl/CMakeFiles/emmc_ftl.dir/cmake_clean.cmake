file(REMOVE_RECURSE
  "CMakeFiles/emmc_ftl.dir/allocator.cc.o"
  "CMakeFiles/emmc_ftl.dir/allocator.cc.o.d"
  "CMakeFiles/emmc_ftl.dir/distributor.cc.o"
  "CMakeFiles/emmc_ftl.dir/distributor.cc.o.d"
  "CMakeFiles/emmc_ftl.dir/ftl.cc.o"
  "CMakeFiles/emmc_ftl.dir/ftl.cc.o.d"
  "CMakeFiles/emmc_ftl.dir/gc.cc.o"
  "CMakeFiles/emmc_ftl.dir/gc.cc.o.d"
  "CMakeFiles/emmc_ftl.dir/mapping.cc.o"
  "CMakeFiles/emmc_ftl.dir/mapping.cc.o.d"
  "CMakeFiles/emmc_ftl.dir/wear.cc.o"
  "CMakeFiles/emmc_ftl.dir/wear.cc.o.d"
  "libemmc_ftl.a"
  "libemmc_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
