
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/allocator.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/allocator.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/allocator.cc.o.d"
  "/root/repo/src/ftl/distributor.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/distributor.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/distributor.cc.o.d"
  "/root/repo/src/ftl/ftl.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/ftl.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/ftl.cc.o.d"
  "/root/repo/src/ftl/gc.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/gc.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/gc.cc.o.d"
  "/root/repo/src/ftl/mapping.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/mapping.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/mapping.cc.o.d"
  "/root/repo/src/ftl/wear.cc" "src/ftl/CMakeFiles/emmc_ftl.dir/wear.cc.o" "gcc" "src/ftl/CMakeFiles/emmc_ftl.dir/wear.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/emmc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
