# Empty compiler generated dependencies file for emmc_ftl.
# This may be replaced when dependencies are built.
