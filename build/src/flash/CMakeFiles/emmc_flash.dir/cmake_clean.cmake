file(REMOVE_RECURSE
  "CMakeFiles/emmc_flash.dir/array.cc.o"
  "CMakeFiles/emmc_flash.dir/array.cc.o.d"
  "CMakeFiles/emmc_flash.dir/geometry.cc.o"
  "CMakeFiles/emmc_flash.dir/geometry.cc.o.d"
  "CMakeFiles/emmc_flash.dir/plane.cc.o"
  "CMakeFiles/emmc_flash.dir/plane.cc.o.d"
  "CMakeFiles/emmc_flash.dir/pool.cc.o"
  "CMakeFiles/emmc_flash.dir/pool.cc.o.d"
  "CMakeFiles/emmc_flash.dir/timing.cc.o"
  "CMakeFiles/emmc_flash.dir/timing.cc.o.d"
  "libemmc_flash.a"
  "libemmc_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
