file(REMOVE_RECURSE
  "libemmc_flash.a"
)
