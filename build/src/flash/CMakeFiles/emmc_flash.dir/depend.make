# Empty dependencies file for emmc_flash.
# This may be replaced when dependencies are built.
