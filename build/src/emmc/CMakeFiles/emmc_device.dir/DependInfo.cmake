
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emmc/config.cc" "src/emmc/CMakeFiles/emmc_device.dir/config.cc.o" "gcc" "src/emmc/CMakeFiles/emmc_device.dir/config.cc.o.d"
  "/root/repo/src/emmc/device.cc" "src/emmc/CMakeFiles/emmc_device.dir/device.cc.o" "gcc" "src/emmc/CMakeFiles/emmc_device.dir/device.cc.o.d"
  "/root/repo/src/emmc/packing.cc" "src/emmc/CMakeFiles/emmc_device.dir/packing.cc.o" "gcc" "src/emmc/CMakeFiles/emmc_device.dir/packing.cc.o.d"
  "/root/repo/src/emmc/power.cc" "src/emmc/CMakeFiles/emmc_device.dir/power.cc.o" "gcc" "src/emmc/CMakeFiles/emmc_device.dir/power.cc.o.d"
  "/root/repo/src/emmc/ram_buffer.cc" "src/emmc/CMakeFiles/emmc_device.dir/ram_buffer.cc.o" "gcc" "src/emmc/CMakeFiles/emmc_device.dir/ram_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftl/CMakeFiles/emmc_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/emmc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
