file(REMOVE_RECURSE
  "libemmc_device.a"
)
