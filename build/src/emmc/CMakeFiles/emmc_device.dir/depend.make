# Empty dependencies file for emmc_device.
# This may be replaced when dependencies are built.
