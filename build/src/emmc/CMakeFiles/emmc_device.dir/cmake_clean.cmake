file(REMOVE_RECURSE
  "CMakeFiles/emmc_device.dir/config.cc.o"
  "CMakeFiles/emmc_device.dir/config.cc.o.d"
  "CMakeFiles/emmc_device.dir/device.cc.o"
  "CMakeFiles/emmc_device.dir/device.cc.o.d"
  "CMakeFiles/emmc_device.dir/packing.cc.o"
  "CMakeFiles/emmc_device.dir/packing.cc.o.d"
  "CMakeFiles/emmc_device.dir/power.cc.o"
  "CMakeFiles/emmc_device.dir/power.cc.o.d"
  "CMakeFiles/emmc_device.dir/ram_buffer.cc.o"
  "CMakeFiles/emmc_device.dir/ram_buffer.cc.o.d"
  "libemmc_device.a"
  "libemmc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
