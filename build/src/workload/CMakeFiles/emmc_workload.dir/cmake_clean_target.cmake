file(REMOVE_RECURSE
  "libemmc_workload.a"
)
