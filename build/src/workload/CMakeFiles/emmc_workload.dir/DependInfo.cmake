
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/combo.cc" "src/workload/CMakeFiles/emmc_workload.dir/combo.cc.o" "gcc" "src/workload/CMakeFiles/emmc_workload.dir/combo.cc.o.d"
  "/root/repo/src/workload/fixed.cc" "src/workload/CMakeFiles/emmc_workload.dir/fixed.cc.o" "gcc" "src/workload/CMakeFiles/emmc_workload.dir/fixed.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/emmc_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/emmc_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/emmc_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/emmc_workload.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/emmc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
