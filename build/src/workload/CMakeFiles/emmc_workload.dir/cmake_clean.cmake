file(REMOVE_RECURSE
  "CMakeFiles/emmc_workload.dir/combo.cc.o"
  "CMakeFiles/emmc_workload.dir/combo.cc.o.d"
  "CMakeFiles/emmc_workload.dir/fixed.cc.o"
  "CMakeFiles/emmc_workload.dir/fixed.cc.o.d"
  "CMakeFiles/emmc_workload.dir/generator.cc.o"
  "CMakeFiles/emmc_workload.dir/generator.cc.o.d"
  "CMakeFiles/emmc_workload.dir/profile.cc.o"
  "CMakeFiles/emmc_workload.dir/profile.cc.o.d"
  "libemmc_workload.a"
  "libemmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
