# Empty compiler generated dependencies file for emmc_workload.
# This may be replaced when dependencies are built.
