file(REMOVE_RECURSE
  "CMakeFiles/emmc_sim.dir/event.cc.o"
  "CMakeFiles/emmc_sim.dir/event.cc.o.d"
  "CMakeFiles/emmc_sim.dir/logging.cc.o"
  "CMakeFiles/emmc_sim.dir/logging.cc.o.d"
  "CMakeFiles/emmc_sim.dir/random.cc.o"
  "CMakeFiles/emmc_sim.dir/random.cc.o.d"
  "CMakeFiles/emmc_sim.dir/simulator.cc.o"
  "CMakeFiles/emmc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/emmc_sim.dir/stats.cc.o"
  "CMakeFiles/emmc_sim.dir/stats.cc.o.d"
  "libemmc_sim.a"
  "libemmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
