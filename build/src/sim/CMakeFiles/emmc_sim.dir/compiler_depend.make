# Empty compiler generated dependencies file for emmc_sim.
# This may be replaced when dependencies are built.
