file(REMOVE_RECURSE
  "libemmc_sim.a"
)
