file(REMOVE_RECURSE
  "../bench/bench_biotracer_overhead"
  "../bench/bench_biotracer_overhead.pdb"
  "CMakeFiles/bench_biotracer_overhead.dir/bench_biotracer_overhead.cc.o"
  "CMakeFiles/bench_biotracer_overhead.dir/bench_biotracer_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_biotracer_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
