file(REMOVE_RECURSE
  "../bench/bench_fig5_resp_dist"
  "../bench/bench_fig5_resp_dist.pdb"
  "CMakeFiles/bench_fig5_resp_dist.dir/bench_fig5_resp_dist.cc.o"
  "CMakeFiles/bench_fig5_resp_dist.dir/bench_fig5_resp_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_resp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
