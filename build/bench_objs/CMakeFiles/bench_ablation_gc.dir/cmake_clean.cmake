file(REMOVE_RECURSE
  "../bench/bench_ablation_gc"
  "../bench/bench_ablation_gc.pdb"
  "CMakeFiles/bench_ablation_gc.dir/bench_ablation_gc.cc.o"
  "CMakeFiles/bench_ablation_gc.dir/bench_ablation_gc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
