# Empty dependencies file for bench_ablation_gc.
# This may be replaced when dependencies are built.
