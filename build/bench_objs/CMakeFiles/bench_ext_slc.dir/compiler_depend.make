# Empty compiler generated dependencies file for bench_ext_slc.
# This may be replaced when dependencies are built.
