file(REMOVE_RECURSE
  "../bench/bench_ext_slc"
  "../bench/bench_ext_slc.pdb"
  "CMakeFiles/bench_ext_slc.dir/bench_ext_slc.cc.o"
  "CMakeFiles/bench_ext_slc.dir/bench_ext_slc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_slc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
