file(REMOVE_RECURSE
  "../bench/bench_ablation_power"
  "../bench/bench_ablation_power.pdb"
  "CMakeFiles/bench_ablation_power.dir/bench_ablation_power.cc.o"
  "CMakeFiles/bench_ablation_power.dir/bench_ablation_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
