file(REMOVE_RECURSE
  "../bench/bench_fig8_mrt"
  "../bench/bench_fig8_mrt.pdb"
  "CMakeFiles/bench_fig8_mrt.dir/bench_fig8_mrt.cc.o"
  "CMakeFiles/bench_fig8_mrt.dir/bench_fig8_mrt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
