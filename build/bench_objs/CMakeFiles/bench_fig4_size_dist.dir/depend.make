# Empty dependencies file for bench_fig4_size_dist.
# This may be replaced when dependencies are built.
