
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_size_dist.cc" "bench_objs/CMakeFiles/bench_fig4_size_dist.dir/bench_fig4_size_dist.cc.o" "gcc" "bench_objs/CMakeFiles/bench_fig4_size_dist.dir/bench_fig4_size_dist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/emmc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/emmc/CMakeFiles/emmc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/emmc_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/emmc_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/emmc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/emmc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
