file(REMOVE_RECURSE
  "../bench/bench_fig4_size_dist"
  "../bench/bench_fig4_size_dist.pdb"
  "CMakeFiles/bench_fig4_size_dist.dir/bench_fig4_size_dist.cc.o"
  "CMakeFiles/bench_fig4_size_dist.dir/bench_fig4_size_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_size_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
