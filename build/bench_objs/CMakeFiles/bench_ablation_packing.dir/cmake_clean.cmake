file(REMOVE_RECURSE
  "../bench/bench_ablation_packing"
  "../bench/bench_ablation_packing.pdb"
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cc.o"
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
