# Empty dependencies file for bench_ablation_gcpolicy.
# This may be replaced when dependencies are built.
