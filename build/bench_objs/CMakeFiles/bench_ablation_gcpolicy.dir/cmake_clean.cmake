file(REMOVE_RECURSE
  "../bench/bench_ablation_gcpolicy"
  "../bench/bench_ablation_gcpolicy.pdb"
  "CMakeFiles/bench_ablation_gcpolicy.dir/bench_ablation_gcpolicy.cc.o"
  "CMakeFiles/bench_ablation_gcpolicy.dir/bench_ablation_gcpolicy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gcpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
