file(REMOVE_RECURSE
  "../bench/bench_characteristics"
  "../bench/bench_characteristics.pdb"
  "CMakeFiles/bench_characteristics.dir/bench_characteristics.cc.o"
  "CMakeFiles/bench_characteristics.dir/bench_characteristics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
