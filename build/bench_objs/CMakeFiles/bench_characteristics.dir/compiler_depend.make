# Empty compiler generated dependencies file for bench_characteristics.
# This may be replaced when dependencies are built.
