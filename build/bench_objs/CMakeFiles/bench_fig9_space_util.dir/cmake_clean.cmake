file(REMOVE_RECURSE
  "../bench/bench_fig9_space_util"
  "../bench/bench_fig9_space_util.pdb"
  "CMakeFiles/bench_fig9_space_util.dir/bench_fig9_space_util.cc.o"
  "CMakeFiles/bench_fig9_space_util.dir/bench_fig9_space_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_space_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
