file(REMOVE_RECURSE
  "../bench/bench_fig6_interarrival"
  "../bench/bench_fig6_interarrival.pdb"
  "CMakeFiles/bench_fig6_interarrival.dir/bench_fig6_interarrival.cc.o"
  "CMakeFiles/bench_fig6_interarrival.dir/bench_fig6_interarrival.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
