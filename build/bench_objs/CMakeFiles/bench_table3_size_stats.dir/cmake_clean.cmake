file(REMOVE_RECURSE
  "../bench/bench_table3_size_stats"
  "../bench/bench_table3_size_stats.pdb"
  "CMakeFiles/bench_table3_size_stats.dir/bench_table3_size_stats.cc.o"
  "CMakeFiles/bench_table3_size_stats.dir/bench_table3_size_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_size_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
