file(REMOVE_RECURSE
  "../bench/bench_table5_configs"
  "../bench/bench_table5_configs.pdb"
  "CMakeFiles/bench_table5_configs.dir/bench_table5_configs.cc.o"
  "CMakeFiles/bench_table5_configs.dir/bench_table5_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
