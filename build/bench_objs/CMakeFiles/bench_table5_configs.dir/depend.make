# Empty dependencies file for bench_table5_configs.
# This may be replaced when dependencies are built.
