file(REMOVE_RECURSE
  "../bench/bench_fig7_combo"
  "../bench/bench_fig7_combo.pdb"
  "CMakeFiles/bench_fig7_combo.dir/bench_fig7_combo.cc.o"
  "CMakeFiles/bench_fig7_combo.dir/bench_fig7_combo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
