# Empty compiler generated dependencies file for bench_ext_endurance.
# This may be replaced when dependencies are built.
