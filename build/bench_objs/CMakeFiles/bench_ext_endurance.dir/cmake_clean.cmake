file(REMOVE_RECURSE
  "../bench/bench_ext_endurance"
  "../bench/bench_ext_endurance.pdb"
  "CMakeFiles/bench_ext_endurance.dir/bench_ext_endurance.cc.o"
  "CMakeFiles/bench_ext_endurance.dir/bench_ext_endurance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
