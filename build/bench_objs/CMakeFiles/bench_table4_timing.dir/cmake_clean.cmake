file(REMOVE_RECURSE
  "../bench/bench_table4_timing"
  "../bench/bench_table4_timing.pdb"
  "CMakeFiles/bench_table4_timing.dir/bench_table4_timing.cc.o"
  "CMakeFiles/bench_table4_timing.dir/bench_table4_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
