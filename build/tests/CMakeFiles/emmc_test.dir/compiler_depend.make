# Empty compiler generated dependencies file for emmc_test.
# This may be replaced when dependencies are built.
