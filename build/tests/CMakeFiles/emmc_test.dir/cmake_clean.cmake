file(REMOVE_RECURSE
  "CMakeFiles/emmc_test.dir/emmc/config_test.cc.o"
  "CMakeFiles/emmc_test.dir/emmc/config_test.cc.o.d"
  "CMakeFiles/emmc_test.dir/emmc/device_test.cc.o"
  "CMakeFiles/emmc_test.dir/emmc/device_test.cc.o.d"
  "CMakeFiles/emmc_test.dir/emmc/packing_test.cc.o"
  "CMakeFiles/emmc_test.dir/emmc/packing_test.cc.o.d"
  "CMakeFiles/emmc_test.dir/emmc/power_test.cc.o"
  "CMakeFiles/emmc_test.dir/emmc/power_test.cc.o.d"
  "CMakeFiles/emmc_test.dir/emmc/ram_buffer_test.cc.o"
  "CMakeFiles/emmc_test.dir/emmc/ram_buffer_test.cc.o.d"
  "emmc_test"
  "emmc_test.pdb"
  "emmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
